//===----------------------------------------------------------------------===//
///
/// \file
/// Differential test: the streaming vector-clock detector against the
/// enumerative §3 happens-before oracle.
///
/// Small .tsl programs (handwritten and generator-produced, across all
/// four generation disciplines) are explored into tracesets; every
/// maximal execution is encoded as a TSRL event log (racelog/
/// Differential.h) and scanned by the streaming detector in several
/// configurations — epoch engine inline, epoch engine sharded, and the
/// full-vector-clock oracle. For every single trace the detector must
/// report exactly the races the quadratic HappensBefore matrix defines:
/// the same racy locations and the same first racing event per location,
/// race by race. The suite requires at least 200 generated traces, with
/// both racy and race-free ones represented.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "racelog/Detect.h"
#include "racelog/Differential.h"
#include "support/Rng.h"
#include "trace/Enumerate.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

using namespace tracesafe;
using namespace tracesafe::racelog;

namespace {

std::vector<ExpectedRace> project(const RaceLogReport &R) {
  std::vector<ExpectedRace> Out;
  for (const RaceRecord &Rec : R.Races)
    Out.push_back({Rec.Addr, Rec.EventIndex});
  return Out;
}

struct DiffTally {
  uint64_t Traces = 0;
  uint64_t RacyTraces = 0;
  uint64_t RaceFreeTraces = 0;
  uint64_t Events = 0;
};

/// Runs one interleaving through every detector configuration and asserts
/// race-by-race equality with the HappensBefore ground truth.
void checkInterleaving(const Interleaving &I, DiffTally &Tally) {
  // Tiny blocks so even short traces span several CRC frames.
  DifferentialCase C = makeDifferentialCase(I, /*EventsPerBlock=*/8);
  struct Cfg {
    unsigned Shards, Workers;
    bool Epochs;
    const char *Name;
  };
  static constexpr Cfg Configs[] = {
      {1, 1, true, "epoch-inline"},
      {4, 1, true, "epoch-4shard"},
      {4, 4, true, "epoch-4shard-pooled"},
      {1, 1, false, "oracle"},
  };
  for (const Cfg &K : Configs) {
    RaceLogOptions O;
    O.Shards = K.Shards;
    O.Workers = K.Workers;
    O.Epochs = K.Epochs;
    O.WindowEvents = 16; // force many pipeline barriers on short logs
    O.MaxRaces = 1 << 20;
    RaceLogReport R = scanRaceLog(C.Log, O);
    ASSERT_TRUE(R.FormatOk);
    ASSERT_FALSE(R.Stats.Truncated);
    EXPECT_EQ(R.Stats.Events, C.Events);
    EXPECT_EQ(project(R), C.Races)
        << K.Name << " on trace: " << I.str();
    EXPECT_EQ(R.Stats.RacyLocations, C.Races.size());
  }
  ++Tally.Traces;
  Tally.Events += C.Events;
  (C.Races.empty() ? Tally.RaceFreeTraces : Tally.RacyTraces)++;
}

/// Explores \p P and differentially checks up to \p MaxTraces maximal
/// executions. Returns true when any checked trace was racy.
bool checkProgram(const Program &P, DiffTally &Tally,
                  uint64_t MaxTraces = 48) {
  ExploreLimits EL;
  EL.MaxActions = 12;
  Traceset T = programTraceset(P, defaultDomainFor(P, 2), EL);
  EnumerationLimits L;
  L.MaxVisited = 2'000'000;
  uint64_t Seen = 0;
  bool AnyRacy = false;
  uint64_t Before = Tally.RacyTraces;
  forEachMaximalExecution(
      T,
      [&](const Interleaving &I) {
        checkInterleaving(I, Tally);
        return ++Seen < MaxTraces;
      },
      L);
  AnyRacy = Tally.RacyTraces > Before;
  return AnyRacy;
}

TEST(RaceLogDifferential, HandwrittenProgramsMatchTheOracle) {
  DiffTally Tally;
  // Racy: unsynchronised conflicting accesses.
  bool Racy = checkProgram(
      parseOrDie("thread { x := 1; r0 := y; }\n"
                 "thread { y := 1; r1 := x; print r1; }\n"),
      Tally);
  EXPECT_TRUE(Racy);
  // Lock-disciplined: race-free on every trace.
  bool LockRacy = checkProgram(
      parseOrDie("thread { sync m { x := 1; r0 := x; } }\n"
                 "thread { sync m { x := 2; } print 0; }\n"),
      Tally);
  EXPECT_FALSE(LockRacy);
  // Volatile hand-off: the classic message-passing idiom; the data access
  // races only in the interleavings where the flag read misses the write.
  checkProgram(
      parseOrDie(
          "volatile v;\n"
          "thread { x := 1; v := 1; }\n"
          "thread { r0 := v; if (r0 == 1) { r1 := x; } else { r1 := 9; } }\n"),
      Tally);
  EXPECT_GT(Tally.RacyTraces, 0u);
  EXPECT_GT(Tally.RaceFreeTraces, 0u);
}

TEST(RaceLogDifferential, GeneratedProgramsAcrossAllDisciplines) {
  DiffTally Tally;
  constexpr GenDiscipline Disciplines[] = {
      GenDiscipline::Racy, GenDiscipline::LockDiscipline,
      GenDiscipline::VolatileLocations, GenDiscipline::Mixed};
  Rng R(20260809);
  // Keep drawing programs round-robin over the disciplines until the
  // suite has differentially checked at least 200 traces.
  uint64_t Draw = 0;
  while (Tally.Traces < 200 && Draw < 400) {
    GenOptions GO;
    GO.Discipline = Disciplines[Draw % 4];
    GO.Threads = 2 + Draw % 2;
    GO.MaxStmtsPerThread = 4;
    GO.Locations = 2;
    ++Draw;
    checkProgram(generateProgram(R, GO), Tally, /*MaxTraces=*/24);
  }
  EXPECT_GE(Tally.Traces, 200u);
  // The discipline mix must exercise both verdicts, or the equality
  // checks above would be vacuous on one side.
  EXPECT_GT(Tally.RacyTraces, 0u);
  EXPECT_GT(Tally.RaceFreeTraces, 0u);
  RecordProperty("traces", static_cast<int>(Tally.Traces));
  RecordProperty("events", static_cast<int>(Tally.Events));
}

TEST(RaceLogDifferential, TracesetVerdictAgreesWithEnumerativeQuery) {
  // Aggregate cross-check: a traceset has a happens-before race (the
  // enumerative findHappensBeforeRace query) iff some maximal execution's
  // log scans Refuted.
  Rng R(77);
  for (int Prog = 0; Prog < 8; ++Prog) {
    GenOptions GO;
    GO.Discipline =
        Prog % 2 ? GenDiscipline::Racy : GenDiscipline::LockDiscipline;
    GO.MaxStmtsPerThread = 3;
    Program P = generateProgram(R, GO);
    ExploreLimits EL;
    EL.MaxActions = 10;
    Traceset T = programTraceset(P, defaultDomainFor(P, 2), EL);
    RaceReport Ref = findHappensBeforeRace(T);
    ASSERT_FALSE(Ref.Stats.Truncated);
    bool AnyStreamingRace = false;
    forEachMaximalExecution(T, [&](const Interleaving &I) {
      DifferentialCase C = makeDifferentialCase(I);
      if (scanRaceLog(C.Log).verdict() == VerdictKind::Refuted)
        AnyStreamingRace = true;
      return !AnyStreamingRace;
    });
    EXPECT_EQ(Ref.HasRace, AnyStreamingRace) << "program " << Prog;
  }
}

} // namespace
