//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the syntactic rewrite engine (Figs 9-11): every rule's
/// match conditions and rewrite effect, path resolution into nested
/// blocks, and the fv/sync-free side conditions.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Rewrite.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// All sites of \p Rule in \p P.
std::vector<RewriteSite> sitesOf(const Program &P, RuleKind Rule) {
  std::vector<RewriteSite> Out;
  for (const RewriteSite &S : findRewriteSites(P, RuleSet::withExtensions()))
    if (S.Rule == Rule)
      Out.push_back(S);
  return Out;
}

/// Expects exactly one site of \p Rule and that applying it yields
/// \p Expected.
void expectRewrites(const char *Source, RuleKind Rule, const char *Expected) {
  Program P = parseOrDie(Source);
  std::vector<RewriteSite> Sites = sitesOf(P, Rule);
  ASSERT_EQ(Sites.size(), 1u) << ruleName(Rule) << " on " << Source;
  Program Out = applyRewrite(P, Sites[0]);
  EXPECT_TRUE(Out.equals(parseOrDie(Expected)))
      << "got:\n" << printProgram(Out);
}

/// Expects no site of \p Rule.
void expectBlocked(const char *Source, RuleKind Rule) {
  Program P = parseOrDie(Source);
  EXPECT_TRUE(sitesOf(P, Rule).empty())
      << ruleName(Rule) << " unexpectedly matched " << Source;
}

// --- Fig 10: eliminations -------------------------------------------------

TEST(RewriteElim, ERaR) {
  expectRewrites("thread { r1 := x; skip; r2 := x; }", RuleKind::ERaR,
                 "thread { r1 := x; skip; r2 := r1; }");
}

TEST(RewriteElim, ERaRBlockedByVolatile) {
  expectBlocked("volatile x; thread { r1 := x; r2 := x; }", RuleKind::ERaR);
}

TEST(RewriteElim, ERaRBlockedByInterveningSync) {
  expectBlocked("thread { r1 := x; lock m; r2 := x; }", RuleKind::ERaR);
  expectBlocked("volatile v; thread { r1 := x; r3 := v; r2 := x; }",
                RuleKind::ERaR);
}

TEST(RewriteElim, ERaRBlockedByFvClash) {
  // S writes x.
  expectBlocked("thread { r1 := x; x := 1; r2 := x; }", RuleKind::ERaR);
  // S uses r1.
  expectBlocked("thread { r1 := x; r1 := 2; r2 := x; }", RuleKind::ERaR);
  // S uses r2.
  expectBlocked("thread { r1 := x; r2 := 2; r2 := x; }", RuleKind::ERaR);
}

TEST(RewriteElim, ERaW) {
  expectRewrites("thread { x := r1; print r3; r2 := x; }", RuleKind::ERaW,
                 "thread { x := r1; print r3; r2 := r1; }");
  // Literal stores propagate the literal.
  expectRewrites("thread { x := 5; skip; r2 := x; }", RuleKind::ERaW,
                 "thread { x := 5; skip; r2 := 5; }");
}

TEST(RewriteElim, EWaR) {
  expectRewrites("thread { r1 := x; skip; x := r1; }", RuleKind::EWaR,
                 "thread { r1 := x; skip; }");
  // The written register must be the read one.
  expectBlocked("thread { r1 := x; x := r2; }", RuleKind::EWaR);
  expectBlocked("thread { r1 := x; x := 1; }", RuleKind::EWaR);
}

TEST(RewriteElim, EWbW) {
  expectRewrites("thread { x := r1; skip; x := r2; }", RuleKind::EWbW,
                 "thread { skip; x := r2; }");
}

TEST(RewriteElim, EWbWBlockedByReadBetween) {
  expectBlocked("thread { x := r1; r3 := x; x := r2; }", RuleKind::EWbW);
}

TEST(RewriteElim, EIr) {
  expectRewrites("thread { r1 := x; r1 := 3; }", RuleKind::EIr,
                 "thread { r1 := 3; }");
  // Only adjacent, only a literal overwrite of the same register.
  expectBlocked("thread { r1 := x; skip; r1 := 3; }", RuleKind::EIr);
  expectBlocked("thread { r1 := x; r2 := 3; }", RuleKind::EIr);
  expectBlocked("thread { r1 := x; r1 := r2; }", RuleKind::EIr);
  expectBlocked("volatile x; thread { r1 := x; r1 := 3; }", RuleKind::EIr);
}

// --- Fig 11: reorderings ----------------------------------------------------

TEST(RewriteReorder, RRR) {
  expectRewrites("thread { r1 := x; r2 := y; }", RuleKind::RRR,
                 "thread { r2 := y; r1 := x; }");
}

TEST(RewriteReorder, RRRConditions) {
  expectBlocked("thread { r1 := x; r1 := y; }", RuleKind::RRR); // r1 = r2.
  expectBlocked("volatile x; thread { r1 := x; r2 := y; }",
                RuleKind::RRR); // x volatile (acquire first).
  // y volatile is roach-motel and allowed.
  Program P = parseOrDie("volatile y; thread { r1 := x; r2 := y; }");
  EXPECT_EQ(sitesOf(P, RuleKind::RRR).size(), 1u);
}

TEST(RewriteReorder, RWW) {
  expectRewrites("thread { x := r1; y := r2; }", RuleKind::RWW,
                 "thread { y := r2; x := r1; }");
  expectBlocked("thread { x := r1; x := r2; }", RuleKind::RWW); // Same loc.
  expectBlocked("volatile y; thread { x := r1; y := r2; }",
                RuleKind::RWW); // y volatile (release second).
  Program P = parseOrDie("volatile x; thread { x := r1; y := r2; }");
  EXPECT_EQ(sitesOf(P, RuleKind::RWW).size(), 1u); // Roach-motel ok.
}

TEST(RewriteReorder, RWR) {
  expectRewrites("thread { x := r1; r2 := y; }", RuleKind::RWR,
                 "thread { r2 := y; x := r1; }");
  expectBlocked("thread { x := r1; r1 := y; }", RuleKind::RWR); // r1 = r2.
  expectBlocked("thread { x := r1; r2 := x; }", RuleKind::RWR); // x = y.
  expectBlocked("volatile x, y; thread { x := r1; r2 := y; }",
                RuleKind::RWR); // Both volatile.
  Program P = parseOrDie("volatile x; thread { x := r1; r2 := y; }");
  EXPECT_EQ(sitesOf(P, RuleKind::RWR).size(), 1u);
}

TEST(RewriteReorder, RRW) {
  expectRewrites("thread { r1 := x; y := r2; }", RuleKind::RRW,
                 "thread { y := r2; r1 := x; }");
  expectBlocked("thread { r1 := x; y := r1; }", RuleKind::RRW); // r1 = r2.
  expectBlocked("volatile x; thread { r1 := x; y := r2; }", RuleKind::RRW);
  expectBlocked("volatile y; thread { r1 := x; y := r2; }", RuleKind::RRW);
}

TEST(RewriteReorder, LockRules) {
  expectRewrites("thread { x := r1; lock m; }", RuleKind::RWL,
                 "thread { lock m; x := r1; }");
  expectRewrites("thread { r1 := x; lock m; }", RuleKind::RRL,
                 "thread { lock m; r1 := x; }");
  expectRewrites("thread { unlock m; x := r1; }", RuleKind::RUW,
                 "thread { x := r1; unlock m; }");
  expectRewrites("thread { unlock m; r1 := x; }", RuleKind::RUR,
                 "thread { r1 := x; unlock m; }");
  expectBlocked("volatile x; thread { x := r1; lock m; }", RuleKind::RWL);
  expectBlocked("volatile x; thread { unlock m; r1 := x; }", RuleKind::RUR);
}

TEST(RewriteReorder, ExternalRules) {
  expectRewrites("thread { print r1; r2 := x; }", RuleKind::RXR,
                 "thread { r2 := x; print r1; }");
  expectRewrites("thread { print r1; x := r2; }", RuleKind::RXW,
                 "thread { x := r2; print r1; }");
  expectBlocked("thread { print r1; r1 := x; }", RuleKind::RXR); // r1 = r2.
  // Literal prints have no register clash.
  Program P = parseOrDie("thread { print 1; r1 := x; }");
  EXPECT_EQ(sitesOf(P, RuleKind::RXR).size(), 1u);
}

TEST(RewriteReorder, ExtensionRulesGatedBehindFlag) {
  Program P = parseOrDie("thread { r2 := x; print r1; }");
  EXPECT_TRUE(sitesOf(P, RuleKind::RRX).size() == 1u);
  // Default rule set excludes extensions.
  for (const RewriteSite &S : findRewriteSites(P, RuleSet::all()))
    EXPECT_NE(S.Rule, RuleKind::RRX);
  expectRewrites("thread { r2 := x; print r1; }", RuleKind::RRX,
                 "thread { print r1; r2 := x; }");
  expectRewrites("thread { x := r2; print r1; }", RuleKind::RWX,
                 "thread { print r1; x := r2; }");
  expectBlocked("thread { r1 := x; print r1; }", RuleKind::RRX);
}

// --- Paths and nesting -------------------------------------------------------

TEST(Rewrite, SitesInsideNestedBlocks) {
  Program P = parseOrDie(R"(
thread {
  if (r0 == 0) {
    r1 := x;
    r2 := x;
  } else {
    while (r0 != 0) { x := r3; x := r4; }
  }
}
)");
  std::vector<RewriteSite> RaR = sitesOf(P, RuleKind::ERaR);
  ASSERT_EQ(RaR.size(), 1u);
  EXPECT_EQ(RaR[0].Path.Steps.size(), 1u);
  EXPECT_EQ(RaR[0].Path.Steps[0].second, PathSel::ThenBody);
  std::vector<RewriteSite> WbW = sitesOf(P, RuleKind::EWbW);
  ASSERT_EQ(WbW.size(), 1u);
  EXPECT_EQ(WbW[0].Path.Steps[0].second, PathSel::ElseBody);
  EXPECT_EQ(WbW[0].Path.Steps[1].second, PathSel::WhileBody);

  // Applying the nested rewrite only touches the nested list.
  Program Out = applyRewrite(P, RaR[0]);
  EXPECT_TRUE(Out.equals(parseOrDie(R"(
thread {
  if (r0 == 0) {
    r1 := x;
    r2 := r1;
  } else {
    while (r0 != 0) { x := r3; x := r4; }
  }
}
)"))) << printProgram(Out);
}

TEST(Rewrite, GapRulesSpanMultipleStatements) {
  Program P = parseOrDie(
      "thread { r1 := x; skip; r3 := 1; print r3; r2 := x; }");
  std::vector<RewriteSite> Sites = sitesOf(P, RuleKind::ERaR);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].I, 0u);
  EXPECT_EQ(Sites[0].J, 4u);
}

TEST(Rewrite, ApplyDoesNotMutateTheInput) {
  Program P = parseOrDie("thread { r1 := x; r2 := x; }");
  Program Copy = P;
  std::vector<RewriteSite> Sites = sitesOf(P, RuleKind::ERaR);
  ASSERT_FALSE(Sites.empty());
  applyRewrite(P, Sites[0]);
  EXPECT_TRUE(P.equals(Copy));
}

TEST(Rewrite, RuleNamesMatchThePaper) {
  EXPECT_EQ(ruleName(RuleKind::ERaR), "E-RAR");
  EXPECT_EQ(ruleName(RuleKind::EWbW), "E-WBW");
  EXPECT_EQ(ruleName(RuleKind::RWL), "R-WL");
  EXPECT_EQ(ruleName(RuleKind::RXW), "R-XW");
}

TEST(Rewrite, SiteStrIsInformative) {
  Program P = parseOrDie("thread { r1 := x; r2 := x; }");
  std::vector<RewriteSite> Sites = sitesOf(P, RuleKind::ERaR);
  ASSERT_FALSE(Sites.empty());
  EXPECT_NE(Sites[0].str().find("E-RAR"), std::string::npos);
}

} // namespace
