//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Lemma 1 unelimination construction (§5, Fig 5) and its
/// follow-up property: for DRF originals, the instance of an unelimination
/// of an execution is itself an execution with the same behaviour.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "semantics/Unelimination.h"
#include "trace/Enumerate.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// The Fig 5 example: original "v:=1; y:=1  ||  r1:=x; r2:=v; print r2"
/// (v volatile); eliminated "y:=1  ||  r2:=v; print r2" (the last release
/// v:=1 and the irrelevant read r1:=x are gone).
Program fig5Original() {
  return parseOrDie(R"(
volatile v;
thread { v := 1; y := 1; }
thread { r1 := x; r2 := v; print r2; }
)");
}

Program fig5Eliminated() {
  return parseOrDie(R"(
volatile v;
thread { y := 1; }
thread { r2 := v; print r2; }
)");
}

/// The execution I' from Fig 5.
Interleaving fig5Execution() {
  SymbolId Y = Symbol::intern("y"), V = Symbol::intern("v");
  return Interleaving({{0, Action::mkStart(0)},
                       {1, Action::mkStart(1)},
                       {0, Action::mkWrite(Y, 1)},
                       {1, Action::mkRead(V, 0, true)},
                       {1, Action::mkExternal(0)}});
}

TEST(Unelimination, Fig5TracesetsAreRelatedByElimination) {
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Traceset TT = programTraceset(fig5Eliminated(), D);
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Holds);
}

TEST(Unelimination, Fig5ConstructionSucceeds) {
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Interleaving IPrime = fig5Execution();
  ASSERT_TRUE(IPrime.isExecutionOf(programTraceset(fig5Eliminated(), D)));

  UneliminationResult R = findUnelimination(TO, IPrime);
  ASSERT_EQ(R.Verdict, CheckVerdict::Holds);
  EXPECT_TRUE(isUneliminationFunction(IPrime, R.I, R.F));
  // The uneliminated interleaving belongs to the original traceset.
  EXPECT_TRUE(R.I.isInterleavingOf(TO));
  // The paper's key subtlety: the introduced volatile write W[v=1] must
  // come *after* the kept volatile read R[v=0] — the instance is then a
  // genuine execution of the original traceset.
  Interleaving Inst = R.I.instance();
  EXPECT_TRUE(Inst.isExecutionOf(TO)) << Inst.str();
  // Same behaviour (introduced externals could only trail; here there are
  // none).
  EXPECT_EQ(Inst.behaviour(), IPrime.behaviour());
}

TEST(Unelimination, FunctionConditionsAreEnforced) {
  Interleaving IPrime = fig5Execution();
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  UneliminationResult R = findUnelimination(TO, IPrime);
  ASSERT_EQ(R.Verdict, CheckVerdict::Holds);
  // Tamper with the matching: swapping two images of one thread breaks
  // program order.
  std::vector<size_t> Bad = R.F;
  std::swap(Bad[0], Bad[2]); // Thread 0's start and write.
  EXPECT_FALSE(isUneliminationFunction(IPrime, R.I, Bad));
  // Truncating the matching is not a complete matching.
  std::vector<size_t> Short(R.F.begin(), R.F.end() - 1);
  EXPECT_FALSE(isUneliminationFunction(IPrime, R.I, Short));
}

TEST(Unelimination, PropertyOnDrfPrograms) {
  // For every execution I' of the eliminated program, an unelimination
  // exists and its instance is an execution of the original with the same
  // behaviour (all prefixes of I' are race-free because the program is
  // DRF).
  Program O = fig5Original();
  Program T = fig5Eliminated();
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  ASSERT_TRUE(isDataRaceFree(TO));

  size_t Checked = 0;
  forEachExecution(TT, [&](const Interleaving &IPrime) {
    UneliminationResult R = findUnelimination(TO, IPrime);
    EXPECT_EQ(R.Verdict, CheckVerdict::Holds) << IPrime.str();
    if (R.Verdict == CheckVerdict::Holds) {
      EXPECT_TRUE(isUneliminationFunction(IPrime, R.I, R.F));
      Interleaving Inst = R.I.instance();
      EXPECT_TRUE(Inst.isExecutionOf(TO))
          << IPrime.str() << " -> " << Inst.str();
      // Behaviour equality up to introduced trailing externals.
      Behaviour B = Inst.behaviour();
      Behaviour BP = IPrime.behaviour();
      EXPECT_LE(BP.size(), B.size());
      if (BP.size() <= B.size()) {
        EXPECT_TRUE(std::equal(BP.begin(), BP.end(), B.begin()));
      }
    }
    ++Checked;
    return true;
  });
  EXPECT_GT(Checked, 0u);
}

TEST(Unelimination, FailsWhenNoWitnessExists) {
  // An "execution" whose thread trace was never in any elimination of the
  // original: a write of a foreign value.
  Program O = fig5Original();
  Traceset TO = programTraceset(O, {0, 1});
  Interleaving Bogus({{0, Action::mkStart(0)},
                      {0, Action::mkWrite(Symbol::intern("zz"), 1)}});
  EXPECT_EQ(findUnelimination(TO, Bogus).Verdict, CheckVerdict::Fails);
}

} // namespace
