//===----------------------------------------------------------------------===//
///
/// \file
/// Regression replay of the corpus in tests/corpus/: minimised `.tsl`
/// repros written by past fuzz runs, plus hand-minimised engine cases.
/// Each file declares its expectation in its header comments:
///
///   `// property: drf-guarantee`  — re-running the unsafe injection on
///        this program must still violate the DRF guarantee (the failure
///        the fuzzer minimised must keep reproducing);
///   `// expect-race: yes|no`      — the program's traceset must (not)
///        contain an adjacent race, agreed on by the seed oracle and the
///        reduced engine at several worker counts.
///
/// Dropping a failure found in the wild into tests/corpus/ is the whole
/// workflow for turning a fuzz repro into a permanent regression test.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "opt/Unsafe.h"
#include "trace/Enumerate.h"
#include "verify/Checks.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tracesafe;

namespace {

struct CorpusEntry {
  std::string Name;
  std::string Source;
  bool CheckInjection = false; ///< `// property: drf-guarantee`
  bool CheckRace = false;      ///< `// expect-race: ...`
  bool ExpectRace = false;
};

std::vector<CorpusEntry> loadCorpus() {
  std::vector<CorpusEntry> Out;
  for (const auto &File :
       std::filesystem::directory_iterator(TRACESAFE_CORPUS_DIR)) {
    if (File.path().extension() != ".tsl")
      continue;
    std::ifstream In(File.path());
    std::stringstream Ss;
    Ss << In.rdbuf();
    CorpusEntry E;
    E.Name = File.path().filename().string();
    E.Source = Ss.str();
    if (E.Source.find("// property: drf-guarantee") != std::string::npos)
      E.CheckInjection = true;
    if (E.Source.find("// expect-race: yes") != std::string::npos) {
      E.CheckRace = true;
      E.ExpectRace = true;
    } else if (E.Source.find("// expect-race: no") != std::string::npos) {
      E.CheckRace = true;
    }
    Out.push_back(std::move(E));
  }
  return Out;
}

TEST(Corpus, EveryEntryDeclaresAnExpectation) {
  std::vector<CorpusEntry> Corpus = loadCorpus();
  ASSERT_GE(Corpus.size(), 6u) << "corpus missing from " TRACESAFE_CORPUS_DIR;
  for (const CorpusEntry &E : Corpus)
    EXPECT_TRUE(E.CheckInjection || E.CheckRace)
        << E.Name << " declares no expectation";
}

TEST(Corpus, InjectedFailuresStillReproduce) {
  for (const CorpusEntry &E : loadCorpus()) {
    if (!E.CheckInjection)
      continue;
    SCOPED_TRACE(E.Name);
    ParseResult PR = parseProgram(E.Source);
    ASSERT_TRUE(PR) << PR.Error;
    const Program &P = *PR.Prog;
    // Same injection the fuzzer used: elide the first lock pair (const
    // prop is the fallback it never minimises to).
    std::vector<LockPair> Pairs = findLockPairs(P);
    ASSERT_FALSE(Pairs.empty()) << "repro lost its lock pair";
    Program T = elideLockPair(P, Pairs.front());
    EXPECT_EQ(checkDrfGuarantee(P, T).outcome(), GuaranteeOutcome::Violated);
  }
}

TEST(Corpus, RaceVerdictsAgreeAcrossEngines) {
  for (const CorpusEntry &E : loadCorpus()) {
    if (!E.CheckRace)
      continue;
    SCOPED_TRACE(E.Name);
    ParseResult PR = parseProgram(E.Source);
    ASSERT_TRUE(PR) << PR.Error;
    ExploreLimits EL;
    EL.MaxActions = 10;
    Traceset T =
        programTraceset(*PR.Prog, defaultDomainFor(*PR.Prog, 2), EL);
    for (unsigned Workers : {1u, 2u}) {
      for (bool Oracle : {false, true}) {
        if (Oracle && Workers != 1)
          continue; // the oracle is sequential by definition
        EnumerationLimits L;
        L.Workers = Workers;
        L.ExhaustiveOracle = Oracle;
        RaceReport R = findAdjacentRace(T, L);
        ASSERT_FALSE(R.Stats.Truncated);
        EXPECT_EQ(R.HasRace, E.ExpectRace)
            << "workers=" << Workers << " oracle=" << Oracle;
      }
    }
  }
}

} // namespace
