//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the traceset execution enumerator: executions, maximal
/// executions, behaviour collection, and both data-race definitions.
///
//===----------------------------------------------------------------------===//

#include "trace/Enumerate.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId M() { return Symbol::intern("m"); }

/// Fig 2's original traceset over {0,1}: thread 0 copies x into y; thread
/// 1 reads y, writes x:=1, prints what it read.
Traceset fig2Original() {
  Traceset T({0, 1});
  for (Value V : {0, 1})
    T.insert(Trace{Action::mkStart(0), Action::mkRead(X(), V),
                   Action::mkWrite(Y(), V)});
  for (Value V : {0, 1})
    T.insert(Trace{Action::mkStart(1), Action::mkRead(Y(), V),
                   Action::mkWrite(X(), 1), Action::mkExternal(V)});
  return T;
}

TEST(Enumerate, AllExecutionsAreExecutions) {
  Traceset T = fig2Original();
  size_t Count = 0;
  EnumerationStats S = forEachExecution(T, [&](const Interleaving &I) {
    EXPECT_TRUE(I.isExecutionOf(T)) << I.str();
    ++Count;
    return true;
  });
  EXPECT_FALSE(S.Truncated);
  EXPECT_GT(Count, 0u);
}

TEST(Enumerate, MaximalExecutionsCannotBeExtended) {
  Traceset T = fig2Original();
  size_t Count = 0;
  forEachMaximalExecution(T, [&](const Interleaving &I) {
    // Both threads ran to completion (3 + 4 actions; reads are always
    // enabled with the memory value, so nothing can be stuck).
    EXPECT_EQ(I.size(), 7u) << I.str();
    ++Count;
    return true;
  });
  EXPECT_GT(Count, 0u);
}

TEST(Enumerate, BehavioursOfFig2ExcludePrint1) {
  // §2.1: the original program cannot print 1.
  std::set<Behaviour> Bs = collectBehaviours(fig2Original());
  EXPECT_TRUE(Bs.count(Behaviour{}));
  EXPECT_TRUE(Bs.count(Behaviour{0}));
  EXPECT_FALSE(Bs.count(Behaviour{1}));
}

TEST(Enumerate, ReadsOnlySeeMostRecentWrites) {
  // A traceset whose only read value 1 requires the write first.
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1)});
  T.insert(Trace{Action::mkStart(1), Action::mkRead(X(), 1),
                 Action::mkExternal(1)});
  // The read of 1 is only enabled after the write: behaviour {1} exists,
  // but no execution reads 1 from the initial memory.
  std::set<Behaviour> Bs = collectBehaviours(T);
  EXPECT_TRUE(Bs.count(Behaviour{1}));
  forEachExecution(T, [&](const Interleaving &I) {
    EXPECT_TRUE(I.isSequentiallyConsistent());
    return true;
  });
}

TEST(Enumerate, LocksAreExclusive) {
  // Two threads both lock m and print inside the critical section; the
  // prints can appear in either order but never interleave with a held
  // lock.
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkLock(M()),
                 Action::mkExternal(0), Action::mkUnlock(M())});
  T.insert(Trace{Action::mkStart(1), Action::mkLock(M()),
                 Action::mkExternal(1), Action::mkUnlock(M())});
  forEachExecution(T, [&](const Interleaving &I) {
    EXPECT_TRUE(I.respectsMutualExclusion()) << I.str();
    return true;
  });
  std::set<Behaviour> Bs = collectBehaviours(T);
  EXPECT_TRUE(Bs.count(Behaviour{0, 1}));
  EXPECT_TRUE(Bs.count(Behaviour{1, 0}));
}

TEST(Enumerate, AdjacentRaceFoundOnRacyTraceset) {
  Traceset T = fig2Original(); // x and y are both racy.
  RaceReport R = findAdjacentRace(T);
  EXPECT_FALSE(R.Stats.Truncated);
  ASSERT_TRUE(R.HasRace);
  // The witness ends in the racing pair.
  ASSERT_GE(R.Witness.size(), 2u);
  const Event &A = R.Witness[R.Witness.size() - 2];
  const Event &B = R.Witness[R.Witness.size() - 1];
  EXPECT_NE(A.Tid, B.Tid);
  EXPECT_TRUE(A.Act.conflictsWith(B.Act));
}

TEST(Enumerate, HappensBeforeRaceAgreesOnExamples) {
  EXPECT_EQ(findAdjacentRace(fig2Original()).HasRace,
            findHappensBeforeRace(fig2Original()).HasRace);
  // Lock-protected: race free under both definitions.
  Traceset Locked({0, 1});
  Locked.insert(Trace{Action::mkStart(0), Action::mkLock(M()),
                      Action::mkWrite(X(), 1), Action::mkUnlock(M())});
  for (Value V : {0, 1})
    Locked.insert(Trace{Action::mkStart(1), Action::mkLock(M()),
                        Action::mkRead(X(), V), Action::mkUnlock(M())});
  EXPECT_FALSE(findAdjacentRace(Locked).HasRace);
  EXPECT_FALSE(findHappensBeforeRace(Locked).HasRace);
  EXPECT_TRUE(isDataRaceFree(Locked));
}

TEST(Enumerate, VolatileAccessesDoNotRace) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1, true)});
  for (Value V : {0, 1})
    T.insert(Trace{Action::mkStart(1), Action::mkRead(X(), V, true)});
  EXPECT_FALSE(findAdjacentRace(T).HasRace);
  EXPECT_FALSE(findHappensBeforeRace(T).HasRace);
}

TEST(Enumerate, VisitorCanStopEarly) {
  size_t Count = 0;
  forEachExecution(fig2Original(), [&](const Interleaving &) {
    ++Count;
    return false;
  });
  EXPECT_EQ(Count, 1u);
}

TEST(Enumerate, TruncationIsReported) {
  EnumerationLimits Limits;
  Limits.MaxVisited = 3;
  EnumerationStats S =
      forEachExecution(fig2Original(), [](const Interleaving &) {
        return true;
      }, Limits);
  EXPECT_TRUE(S.Truncated);
}

TEST(Enumerate, BlockedThreadsEndMaximalExecutionsEarly) {
  // Thread 0 never unlocks; once it holds m, thread 1 can never lock, so
  // maximal executions where 0 went first have no events of thread 1
  // beyond its start.
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkLock(M()),
                 Action::mkExternal(1)});
  T.insert(Trace{Action::mkStart(1), Action::mkLock(M()),
                 Action::mkExternal(2)});
  bool SawBlockedShape = false;
  forEachMaximalExecution(T, [&](const Interleaving &I) {
    // Exactly one thread gets the lock in every maximal execution.
    size_t Locks = 0;
    for (const Event &E : I)
      Locks += E.Act.isLock();
    EXPECT_EQ(Locks, 1u) << I.str();
    SawBlockedShape = true;
    return true;
  });
  EXPECT_TRUE(SawBlockedShape);
  // Both prints are individually reachable, never both.
  std::set<Behaviour> Bs = collectBehaviours(T);
  EXPECT_TRUE(Bs.count(Behaviour{1}));
  EXPECT_TRUE(Bs.count(Behaviour{2}));
  EXPECT_FALSE(Bs.count(Behaviour{1, 2}));
  EXPECT_FALSE(Bs.count(Behaviour{2, 1}));
}

TEST(Enumerate, BehaviourCollectionReportsTruncation) {
  Traceset T = fig2Original();
  EnumerationLimits Limits;
  Limits.MaxVisited = 2;
  EnumerationStats Stats;
  collectBehaviours(T, Limits, &Stats);
  EXPECT_TRUE(Stats.Truncated);
}

TEST(Enumerate, EmptyTracesetHasOnlyEmptyBehaviour) {
  Traceset T;
  std::set<Behaviour> Bs = collectBehaviours(T);
  EXPECT_EQ(Bs, (std::set<Behaviour>{{}}));
}

} // namespace
