//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the dataflow optimiser: classic CSE/constant-propagation/
/// dead-store shapes, synchronisation barriers, and semantic certification
/// of the whole pass on random programs (the §2.1 claim that such
/// dataflow-based optimisations are semantic eliminations).
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/DataflowOpt.h"
#include "semantics/Elimination.h"
#include "verify/Checks.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

void expectOptimisesTo(const char *Source, const char *Expected) {
  Program P = parseOrDie(Source);
  Program Out = runDataflowOpt(P);
  EXPECT_TRUE(Out.equals(parseOrDie(Expected)))
      << "got:\n" << printProgram(Out);
}

TEST(DataflowOpt, ConstantPropagationThroughMemory) {
  expectOptimisesTo("thread { x := 5; r1 := x; print r1; }",
                    "thread { x := 5; r1 := 5; print r1; }");
}

TEST(DataflowOpt, CommonSubexpressionElimination) {
  expectOptimisesTo("thread { r1 := x; r2 := x; r3 := x; }",
                    "thread { r1 := x; r2 := r1; r3 := r1; }");
}

TEST(DataflowOpt, ForwardingChainsThroughStores) {
  expectOptimisesTo("thread { r1 := x; y := r1; r2 := y; }",
                    "thread { r1 := x; y := r1; r2 := r1; }");
}

TEST(DataflowOpt, SynchronisationKillsFacts) {
  expectOptimisesTo("thread { x := 5; lock m; r1 := x; unlock m; }",
                    "thread { x := 5; lock m; r1 := x; unlock m; }");
  expectOptimisesTo(
      "volatile v; thread { x := 5; r9 := v; r1 := x; print r1; }",
      "volatile v; thread { x := 5; r9 := v; r1 := x; print r1; }");
}

TEST(DataflowOpt, RegisterRedefinitionKillsFacts) {
  expectOptimisesTo("thread { r1 := x; r1 := 7; r2 := x; }",
                    // The dead read r1:=x is removed (E-IR), and x's fact
                    // dies with r1, so r2 := x stays a load.
                    "thread { r1 := 7; r2 := x; }");
}

TEST(DataflowOpt, StoreInvalidatesOldFact) {
  expectOptimisesTo("thread { x := 1; x := 2; r1 := x; print r1; }",
                    // The overwritten store dies (E-WBW) and the load is
                    // forwarded from the surviving store.
                    "thread { x := 2; r1 := 2; print r1; }");
}

TEST(DataflowOpt, WriteBackRemoval) {
  expectOptimisesTo("thread { r1 := x; skip; x := r1; print r1; }",
                    "thread { r1 := x; skip; print r1; }");
}

TEST(DataflowOpt, WriteBackBlockedByRegisterClobber) {
  expectOptimisesTo("thread { r1 := x; r1 := 3; x := r1; }",
                    // r1 := x is a dead read (E-IR); the write-back is NOT
                    // removable because r1 changed.
                    "thread { r1 := 3; x := r1; }");
}

TEST(DataflowOpt, NestedBlocksAreOptimisedIndependently) {
  expectOptimisesTo(
      "thread { if (r0 == 0) { x := 4; r1 := x; } else "
      "{ r2 := y; r3 := y; } }",
      "thread { if (r0 == 0) { x := 4; r1 := 4; } else "
      "{ r2 := y; r3 := r2; } }");
}

TEST(DataflowOpt, FactsSurviveDisjointNestedStatements) {
  expectOptimisesTo(
      "thread { x := 5; if (r0 == 0) { y := 1; } else { skip; } r1 := x; }",
      "thread { x := 5; if (r0 == 0) { y := 1; } else { skip; } r1 := 5; }");
}

TEST(DataflowOpt, FactsDieOnNestedClobber) {
  expectOptimisesTo(
      "thread { x := 5; if (r0 == 0) { x := 6; } else { skip; } r1 := x; }",
      "thread { x := 5; if (r0 == 0) { x := 6; } else { skip; } r1 := x; }");
}

TEST(DataflowOpt, VolatileAccessesAreNeverForwarded) {
  expectOptimisesTo("volatile v; thread { v := 1; r1 := v; }",
                    "volatile v; thread { v := 1; r1 := v; }");
}

TEST(DataflowOpt, ReportCountsApplications) {
  Program P = parseOrDie(
      "thread { x := 1; x := 2; r1 := x; r2 := x; print r2; }");
  DataflowOptReport Report;
  runDataflowOpt(P, &Report);
  EXPECT_EQ(Report.StoresRemoved, 1u);   // x := 1.
  EXPECT_EQ(Report.LoadsForwarded, 2u);  // Both loads become constants.
  EXPECT_GE(Report.Iterations, 1u);
}

TEST(DataflowOpt, IdempotentAtFixpoint) {
  Program P = parseOrDie(
      "thread { x := 1; x := 2; r1 := x; r2 := x; print r2; }");
  Program Once = runDataflowOpt(P);
  Program Twice = runDataflowOpt(Once);
  EXPECT_TRUE(Once.equals(Twice));
}

class DataflowCertification : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataflowCertification, EveryRewriteStepIsASemanticElimination) {
  // Certify the audit-trail chain step by step — the whole pass is a
  // *composition* of eliminations, which in general is not itself a single
  // elimination (the paper's Theorem 1 is stated over chains for exactly
  // this reason; see DataflowOpt.h).
  for (GenDiscipline D :
       {GenDiscipline::Racy, GenDiscipline::LockDiscipline,
        GenDiscipline::VolatileLocations, GenDiscipline::Mixed}) {
    GenOptions Options;
    Options.Discipline = D;
    Options.MaxStmtsPerThread = 5;
    Rng R(GetParam());
    Program P = generateProgram(R, Options);
    std::vector<Program> Chain;
    Program Out = runDataflowOpt(P, nullptr, &Chain);
    ASSERT_FALSE(Chain.empty());
    EXPECT_TRUE(Chain.back().equals(Out));
    std::vector<Value> Dom = defaultDomainFor(P, 2);
    Traceset Prev = programTraceset(Chain.front(), Dom);
    for (size_t K = 1; K < Chain.size(); ++K) {
      Traceset Next = programTraceset(Chain[K], Dom);
      TransformCheckResult Check = checkElimination(Prev, Next);
      EXPECT_EQ(Check.Verdict, CheckVerdict::Holds)
          << "step " << K << ":\n" << printProgram(Chain[K - 1]) << "->\n"
          << printProgram(Chain[K])
          << "counterexample: " << Check.Counterexample.str();
      Prev = std::move(Next);
    }
    DrfGuaranteeReport G = checkDrfGuarantee(P, Out);
    EXPECT_TRUE(G.holds()) << printProgram(P);
  }
}

TEST(DataflowOpt, CompositionCounterexampleNeedsTheChain) {
  // The case the certification sweep uncovered: E-WBW exposes an E-WAR;
  // the two-step chain verifies, the end-to-end single elimination does
  // not.
  Program P = parseOrDie(
      "thread { lock m; r0 := x; x := 0; x := r0; unlock m; }");
  std::vector<Program> Chain;
  Program Out = runDataflowOpt(P, nullptr, &Chain);
  ASSERT_EQ(Chain.size(), 3u);
  std::vector<Value> Dom = defaultDomainFor(P, 2);
  Traceset T0 = programTraceset(Chain[0], Dom);
  Traceset T1 = programTraceset(Chain[1], Dom);
  Traceset T2 = programTraceset(Chain[2], Dom);
  EXPECT_EQ(checkElimination(T0, T1).Verdict, CheckVerdict::Holds);
  EXPECT_EQ(checkElimination(T1, T2).Verdict, CheckVerdict::Holds);
  EXPECT_EQ(checkElimination(T0, T2).Verdict, CheckVerdict::Fails)
      << "if this starts holding, the composition remark in DataflowOpt.h "
         "is stale";
  // The guarantee nevertheless holds end to end (Theorem 1 composes).
  EXPECT_TRUE(checkDrfGuarantee(P, Out).holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowCertification,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
