//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for deterministic fault injection: FaultPlan trigger semantics,
/// and — the robustness contract — every injected engine fault surfacing
/// as a contained Unknown(EngineFault) verdict, never a crash and never a
/// wrong answer, with the engines immediately reusable afterwards.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "support/Failure.h"
#include "trace/Enumerate.h"
#include "tso/BufferedEngine.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

Traceset tracesetFor(const std::string &Source) {
  Program P = parseOrDie(Source);
  ExploreLimits L;
  L.MaxActions = 10;
  return programTraceset(P, defaultDomainFor(P, 2), L);
}

/// Racy two-thread program: plenty of interleavings, definitive Refuted.
const char *const RacySource = "thread { r0 := x; y := r0; x := 2; }\n"
                               "thread { r1 := y; x := 1; print r1; }\n";

/// Lock-disciplined program: definitive Proved.
const char *const DrfSource =
    "thread { sync m { x := 1; x := 2; } }\n"
    "thread { sync m { r0 := x; } print r0; }\n";

TEST(FaultPlan, FiresOnExactHitWindow) {
  FaultPlan Plan;
  Plan.arm(FaultSite::InternAlloc, /*FireAt=*/3, /*Repeat=*/2);
  // Hits 1,2 pass; 3,4 fire; 5+ pass again.
  EXPECT_FALSE(Plan.shouldFire(FaultSite::InternAlloc));
  EXPECT_FALSE(Plan.shouldFire(FaultSite::InternAlloc));
  EXPECT_TRUE(Plan.shouldFire(FaultSite::InternAlloc));
  EXPECT_TRUE(Plan.shouldFire(FaultSite::InternAlloc));
  EXPECT_FALSE(Plan.shouldFire(FaultSite::InternAlloc));
  EXPECT_EQ(Plan.hits(FaultSite::InternAlloc), 5u);
  EXPECT_EQ(Plan.fired(FaultSite::InternAlloc), 2u);
  EXPECT_EQ(Plan.totalFired(), 2u);
  // Unarmed sites never fire and do not count hits.
  EXPECT_FALSE(Plan.shouldFire(FaultSite::TaskRun));
  EXPECT_EQ(Plan.fired(FaultSite::TaskRun), 0u);
}

TEST(FaultPlan, NoPlanInstalledIsInert) {
  ASSERT_EQ(FaultPlan::active(), nullptr);
  EXPECT_FALSE(faultPoint(FaultSite::BudgetCharge));
  EXPECT_NO_THROW(faultThrowBadAlloc(FaultSite::InternAlloc));
  EXPECT_NO_THROW(faultThrowInjected(FaultSite::TaskRun));
}

TEST(FaultPlan, ScopeInstallsAndRestores) {
  FaultPlan Plan;
  Plan.arm(FaultSite::TaskRun, 1);
  {
    FaultPlan::Scope Armed(Plan);
    EXPECT_EQ(FaultPlan::active(), &Plan);
    EXPECT_THROW(faultThrowInjected(FaultSite::TaskRun), InjectedFault);
  }
  EXPECT_EQ(FaultPlan::active(), nullptr);
}

TEST(FaultPlan, RandomizeIsDeterministicAndArmsSomething) {
  FaultPlan A, B;
  A.randomize(42);
  B.randomize(42);
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_NE(A.describe(), "none");
  // Re-randomizing resets the counters.
  A.shouldFire(FaultSite::InternAlloc);
  A.randomize(43);
  EXPECT_EQ(A.hits(FaultSite::InternAlloc), 0u);
}

TEST(FaultInjection, InternAllocFaultIsContainedSequential) {
  Traceset T = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::InternAlloc, 1); // first intern throws bad_alloc
  FaultPlan::Scope Armed(Plan);
  Verdict<Interleaving> V = checkDataRaceFreedom(T);
  EXPECT_TRUE(V.isUnknown());
  EXPECT_EQ(V.Reason, TruncationReason::EngineFault);
  EXPECT_GE(Plan.fired(FaultSite::InternAlloc), 1u);
}

TEST(FaultInjection, InternAllocFaultIsContainedParallel) {
  Traceset T = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::InternAlloc, 1, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  EnumerationLimits L;
  L.Workers = 4;
  Verdict<Interleaving> V = checkDataRaceFreedom(T, L);
  EXPECT_TRUE(V.isUnknown());
  EXPECT_EQ(V.Reason, TruncationReason::EngineFault);
}

TEST(FaultInjection, TaskFaultIsContained) {
  Traceset T = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::TaskRun, 1, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  EnumerationLimits L;
  L.Workers = 4;
  Verdict<Interleaving> V = checkDataRaceFreedom(T, L);
  // Either every parallel task was killed (Unknown) or the search finished
  // on the calling thread before forking; it must never crash or prove.
  if (V.isUnknown())
    EXPECT_EQ(V.Reason, TruncationReason::EngineFault);
  else
    EXPECT_TRUE(V.isRefuted());
}

TEST(FaultInjection, BudgetChargeFaultPoisonsTheQuery) {
  Traceset T = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::BudgetCharge, 1);
  FaultPlan::Scope Armed(Plan);
  Budget B(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/1'000'000, 0});
  EnumerationLimits L;
  L.Shared = &B;
  Verdict<Interleaving> V = checkDataRaceFreedom(T, L);
  // The interrupt check runs every 256 charges; this query is large
  // enough to reach it, so the armed fault must exhaust the budget.
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::EngineFault);
  EXPECT_FALSE(V.isProved());
}

TEST(FaultInjection, EnginesAreReusableAfterAFault) {
  Traceset Racy = tracesetFor(RacySource);
  Traceset Drf = tracesetFor(DrfSource);
  {
    FaultPlan Plan;
    Plan.arm(FaultSite::InternAlloc, 1);
    Plan.arm(FaultSite::TaskRun, 1);
    FaultPlan::Scope Armed(Plan);
    EnumerationLimits L;
    L.Workers = 2;
    (void)checkDataRaceFreedom(Racy, L);
  }
  // Faults disarmed: the same process answers both queries definitively.
  EnumerationLimits L;
  L.Workers = 2;
  EXPECT_TRUE(checkDataRaceFreedom(Racy, L).isRefuted());
  EXPECT_TRUE(checkDataRaceFreedom(Drf, L).isProved());
}

TEST(FaultInjection, FaultNeverFabricatesAVerdict) {
  // A DRF traceset under persistent faults must never come back Refuted,
  // and a racy one must never come back Proved — containment turns faults
  // into Unknown, not into answers.
  Traceset Drf = tracesetFor(DrfSource);
  Traceset Racy = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::InternAlloc, 2, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  for (unsigned Workers : {1u, 4u}) {
    EnumerationLimits L;
    L.Workers = Workers;
    EXPECT_FALSE(checkDataRaceFreedom(Drf, L).isRefuted());
    EXPECT_FALSE(checkDataRaceFreedom(Racy, L).isProved());
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// BufferedEngine (TSO/PSO) fault sites: interning, subtree fork handoff,
// and the drain step. Same contract as the SC engine — contained
// Unknown-style truncation (EngineFault), never a crash, never a wrong
// behaviour set — plus exact hit-counter replay in sequential mode.
//===----------------------------------------------------------------------===//

TEST(BufferedFaults, InternFaultIsContainedSequential) {
  Program P = parseOrDie(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::BufferedIntern, 1, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  TsoLimits L;
  L.Workers = 1;
  ExecStats Stats;
  std::set<Behaviour> S = bufferedBehaviours(P, L, BufferModel::Tso, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.Reason, TruncationReason::EngineFault);
  EXPECT_GE(Plan.fired(FaultSite::BufferedIntern), 1u);
  // The fault fires before the root state is interned, so nothing beyond
  // the engine's unconditional empty-behaviour seed survives — and a
  // truncated set is a subset of the true behaviours, never a superset.
  EXPECT_LE(S.size(), 1u);
  Plan.reset();
  std::set<Behaviour> Clean = bufferedBehaviours(P, L, BufferModel::Tso);
  for (const Behaviour &B : S)
    EXPECT_TRUE(Clean.count(B));
}

TEST(BufferedFaults, DrainFaultIsContainedSequential) {
  Program P = parseOrDie(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::BufferedDrain, 1, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  TsoLimits L;
  L.Workers = 1;
  ExecStats Stats;
  std::set<Behaviour> Faulted =
      bufferedBehaviours(P, L, BufferModel::Tso, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.Reason, TruncationReason::EngineFault);
  EXPECT_GE(Plan.fired(FaultSite::BufferedDrain), 1u);
  // Never a fabricated behaviour: the faulted (truncated) set must be a
  // subset of the true one.
  TsoLimits Clean;
  Clean.Workers = 1;
  std::set<Behaviour> Truth = bufferedBehaviours(P, Clean, BufferModel::Tso);
  for (const Behaviour &B : Faulted)
    EXPECT_TRUE(Truth.count(B));
}

TEST(BufferedFaults, ForkFaultIsContainedParallel) {
  Program P = parseOrDie(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::BufferedFork, 1, /*Repeat=*/1'000'000);
  FaultPlan::Scope Armed(Plan);
  TsoLimits L;
  L.Workers = 4;
  ExecStats Stats;
  std::set<Behaviour> Faulted =
      bufferedBehaviours(P, L, BufferModel::Pso, &Stats);
  // The adaptive fork gate may keep a small search sequential; when a
  // fork was attempted the fault must surface as EngineFault, and either
  // way the set must not contain fabricated behaviours.
  if (Plan.fired(FaultSite::BufferedFork) > 0) {
    EXPECT_TRUE(Stats.Truncated);
    EXPECT_EQ(Stats.Reason, TruncationReason::EngineFault);
  }
  TsoLimits Clean;
  Clean.Workers = 1;
  std::set<Behaviour> Truth = bufferedBehaviours(P, Clean, BufferModel::Pso);
  for (const Behaviour &B : Faulted)
    EXPECT_TRUE(Truth.count(B));
}

TEST(BufferedFaults, HitCountersReplayExactlySequential) {
  // Sequential runs are deterministic, so the per-site hit counters are
  // an exact replay coordinate: two identical runs hit each site the
  // same number of times. (This is what lets a chaos failure be rerun
  // from just (plan, seed).)
  Program P = parseOrDie(RacySource);
  auto RunOnce = [&](FaultPlan &Plan) {
    FaultPlan::Scope Armed(Plan);
    TsoLimits L;
    L.Workers = 1;
    ExecStats Stats;
    (void)bufferedBehaviours(P, L, BufferModel::Tso, &Stats);
  };
  FaultPlan A, B;
  A.arm(FaultSite::BufferedDrain, 7, /*Repeat=*/2);
  B.arm(FaultSite::BufferedDrain, 7, /*Repeat=*/2);
  RunOnce(A);
  RunOnce(B);
  EXPECT_EQ(A.hits(FaultSite::BufferedIntern), B.hits(FaultSite::BufferedIntern));
  EXPECT_EQ(A.hits(FaultSite::BufferedDrain), B.hits(FaultSite::BufferedDrain));
  EXPECT_EQ(A.fired(FaultSite::BufferedDrain), B.fired(FaultSite::BufferedDrain));
  EXPECT_GE(A.fired(FaultSite::BufferedDrain), 1u);
}

TEST(BufferedFaults, EngineReusableAfterFault) {
  Program P = parseOrDie(RacySource);
  TsoLimits L;
  L.Workers = 1;
  std::set<Behaviour> Before = bufferedBehaviours(P, L, BufferModel::Tso);
  {
    FaultPlan Plan;
    Plan.arm(FaultSite::BufferedIntern, 1, /*Repeat=*/1'000'000);
    FaultPlan::Scope Armed(Plan);
    ExecStats Stats;
    (void)bufferedBehaviours(P, L, BufferModel::Tso, &Stats);
    EXPECT_TRUE(Stats.Truncated);
  }
  EXPECT_EQ(bufferedBehaviours(P, L, BufferModel::Tso), Before);
}

TEST(FaultPlan, RandomizeDaemonIsDeterministicAndSeparate) {
  FaultPlan A, B;
  A.randomizeDaemon(7);
  B.randomizeDaemon(7);
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_NE(A.describe(), "none");
  // The daemon plan never arms the pool scheduling sites — a fault-seeded
  // daemon must keep its worker pool alive.
  EXPECT_FALSE(A.shouldFire(FaultSite::TaskRun));
  EXPECT_FALSE(A.shouldFire(FaultSite::TaskStall));
  // And the campaign plan stream is unchanged by the new sites (seeded
  // chaos runs replay across releases): seed 4 must arm campaign sites
  // only.
  FaultPlan C;
  C.randomize(4);
  std::string D = C.describe();
  EXPECT_EQ(D.find("proto-"), std::string::npos);
  EXPECT_EQ(D.find("buffered-"), std::string::npos);
  EXPECT_EQ(D.find("accept"), std::string::npos);
  EXPECT_EQ(D.find("admission"), std::string::npos);
}
