//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "surprising limitations of the DRF guarantee" and the
/// transformations the paper rules out, demonstrated as concrete
/// counterexamples that the checkers catch:
///
///  - write introduction / speculation (§2.1: "write introduction ...
///    generally violates the DRF guarantee");
///  - lock elision (acquires are not eliminable in Definition 1 — and
///    removing a lock/unlock pair from a DRF program can introduce races);
///  - redundant read elimination is fine across a lone acquire but not
///    across a release-acquire pair;
///  - eliminating a release that is *not* last is unsafe.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"
#include "semantics/Reordering.h"
#include "verify/Checks.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

// --- Write speculation -------------------------------------------------------

/// DRF by volatile handshake: thread 0 writes x only after seeing the
/// flag; thread 1 reads x before raising it.
const char *SpeculationOriginal = R"(
volatile v;
thread {
  r1 := v;
  if (r1 == 1) { x := 1; } else { skip; }
}
thread {
  r2 := x;
  print r2;
  v := 1;
}
)";

/// "Optimised": the store is performed speculatively and compensated —
/// sequentially equivalent, concurrently disastrous.
const char *SpeculationTransformed = R"(
volatile v;
thread {
  x := 1;
  r1 := v;
  if (r1 == 1) { skip; } else { x := 0; }
}
thread {
  r2 := x;
  print r2;
  v := 1;
}
)";

TEST(WriteSpeculation, OriginalIsDrf) {
  EXPECT_TRUE(isProgramDrf(parseOrDie(SpeculationOriginal)));
}

TEST(WriteSpeculation, ViolatesTheDrfGuarantee) {
  Program O = parseOrDie(SpeculationOriginal);
  Program T = parseOrDie(SpeculationTransformed);
  DrfGuaranteeReport R = checkDrfGuarantee(O, T);
  EXPECT_TRUE(R.OriginalDrf);
  EXPECT_FALSE(R.holds());
  // Both failure modes occur: a race is introduced and a new behaviour
  // appears (thread 1 can print the speculative 1).
  EXPECT_FALSE(R.TransformedDrf);
  EXPECT_FALSE(R.BehavioursPreserved);
  ASSERT_TRUE(R.NewBehaviour.has_value());
  EXPECT_EQ(*R.NewBehaviour, (Behaviour{1}));
}

TEST(WriteSpeculation, IsNotASemanticTransformation) {
  Program O = parseOrDie(SpeculationOriginal);
  Program T = parseOrDie(SpeculationTransformed);
  std::vector<Value> D = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Fails);
  EXPECT_EQ(checkEliminationThenReordering(TO, TT).Verdict,
            CheckVerdict::Fails);
}

// --- Lock elision ------------------------------------------------------------

const char *ElisionOriginal = R"(
thread { lock m; x := 1; unlock m; }
thread { lock m; r1 := x; unlock m; print r1; }
)";

TEST(LockElision, PairFinderLocatesBothSections) {
  Program P = parseOrDie(ElisionOriginal);
  std::vector<LockPair> Pairs = findLockPairs(P);
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Pairs[0].LockIndex, 0u);
  EXPECT_EQ(Pairs[0].UnlockIndex, 2u);
}

TEST(LockElision, HandlesNesting) {
  Program P = parseOrDie(
      "thread { lock m; lock m; skip; unlock m; unlock m; }");
  std::vector<LockPair> Pairs = findLockPairs(P);
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Pairs[0].LockIndex, 0u);
  EXPECT_EQ(Pairs[0].UnlockIndex, 4u); // Outer pair matches outer unlock.
  EXPECT_EQ(Pairs[1].LockIndex, 1u);
  EXPECT_EQ(Pairs[1].UnlockIndex, 3u);
}

TEST(LockElision, IntroducesARaceIntoADrfProgram) {
  Program O = parseOrDie(ElisionOriginal);
  ASSERT_TRUE(isProgramDrf(O));
  std::vector<LockPair> Pairs = findLockPairs(O);
  Program T = elideLockPair(O, Pairs[1]); // Elide the reader's section.
  EXPECT_FALSE(isProgramDrf(T));
  DrfGuaranteeReport R = checkDrfGuarantee(O, T);
  EXPECT_FALSE(R.holds());
}

TEST(LockElision, IsNotASemanticElimination) {
  // Definition 1 has no case for acquires; the checker refutes the elision
  // even on a single-threaded program where behaviours are unaffected.
  Program O = parseOrDie("thread { lock m; x := 1; unlock m; print 0; }");
  std::vector<LockPair> Pairs = findLockPairs(O);
  ASSERT_EQ(Pairs.size(), 1u);
  Program T = elideLockPair(O, Pairs[0]);
  std::vector<Value> D = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Fails);
  EXPECT_EQ(checkEliminationThenReordering(TO, TT).Verdict,
            CheckVerdict::Fails);
}

// --- Releases: last-action eliminations only ---------------------------------

TEST(ReleaseElimination, TrailingReleaseIsEliminable) {
  // Fig 5's shape: a volatile store with nothing relevant after it.
  Program O = parseOrDie("volatile v; thread { v := 1; y := 1; }");
  Program T = parseOrDie("volatile v; thread { y := 1; }");
  std::vector<Value> D = {0, 1};
  EXPECT_EQ(checkElimination(programTraceset(O, D), programTraceset(T, D))
                .Verdict,
            CheckVerdict::Holds);
}

TEST(ReleaseElimination, NonTrailingReleaseIsNot) {
  // With an external action after it, case 7 does not apply.
  Program O = parseOrDie("volatile v; thread { v := 1; print 0; }");
  Program T = parseOrDie("volatile v; thread { print 0; }");
  std::vector<Value> D = {0, 1};
  EXPECT_EQ(checkElimination(programTraceset(O, D), programTraceset(T, D))
                .Verdict,
            CheckVerdict::Fails);
}

// --- The full §2.1 taxonomy sanity table -------------------------------------

TEST(Limitations, TransformationTaxonomy) {
  // One entry per §2.1 class: trace-preserving (safe, trivially),
  // elimination (safe), reordering (safe), introduction (unsafe). All on
  // the same DRF base program.
  Program Base = parseOrDie(
      "thread { lock m; x := 1; r1 := x; print r1; unlock m; }");
  ASSERT_TRUE(isProgramDrf(Base));
  std::vector<Value> D = defaultDomainFor(Base, 2);
  Traceset TB = programTraceset(Base, D);

  // Trace-preserving: duplicate control flow with identical effects.
  Program TracePreserving = parseOrDie(
      "thread { lock m; x := 1; r1 := x; if (r1 == r1) { print r1; } "
      "else { print r1; } unlock m; }");
  EXPECT_EQ(programTraceset(TracePreserving, D), TB);

  // Elimination (E-RAW shape).
  Program Elim = parseOrDie(
      "thread { lock m; x := 1; r1 := 1; print r1; unlock m; }");
  EXPECT_EQ(checkElimination(TB, programTraceset(Elim, D)).Verdict,
            CheckVerdict::Holds);

  // Introduction: an extra read of a fresh location.
  Program Intro = parseOrDie(
      "thread { r9 := zz; lock m; x := 1; r1 := x; print r1; unlock m; }");
  EXPECT_EQ(checkElimination(TB, programTraceset(Intro, D)).Verdict,
            CheckVerdict::Fails);
}

} // namespace
