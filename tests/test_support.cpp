//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support library: symbols, RNG, permutations,
/// formatting.
///
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Permutation.h"
#include "support/Rng.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Symbol, InternIsIdempotent) {
  SymbolId A = Symbol::intern("support_test_sym");
  SymbolId B = Symbol::intern("support_test_sym");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Symbol::name(A), "support_test_sym");
}

TEST(Symbol, DistinctNamesGetDistinctIds) {
  EXPECT_NE(Symbol::intern("support_a"), Symbol::intern("support_b"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Differs = false;
  for (int I = 0; I < 10 && !Differs; ++I)
    Differs = A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Permutation, IdentityAndInversion) {
  Permutation Id = identityPermutation(5);
  EXPECT_TRUE(isPermutation(Id));
  EXPECT_EQ(invertPermutation(Id), Id);
  Permutation P = {2, 0, 1};
  EXPECT_TRUE(isPermutation(P));
  Permutation Inv = invertPermutation(P);
  EXPECT_EQ(Inv, (Permutation{1, 2, 0}));
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_FALSE(isPermutation({0, 0}));
  EXPECT_FALSE(isPermutation({0, 2}));
  EXPECT_TRUE(isPermutation({}));
}

TEST(Permutation, EnumeratesAllPermutations) {
  size_t Count = 0;
  forEachPermutation(
      4, [](const Permutation &, size_t) { return true; },
      [&](const Permutation &P) {
        EXPECT_TRUE(isPermutation(P));
        ++Count;
        return true;
      });
  EXPECT_EQ(Count, 24u);
}

TEST(Permutation, AdmissiblePruningCuts) {
  // Only permutations fixing position 0 survive.
  size_t Count = 0;
  forEachPermutation(
      4,
      [](const Permutation &P, size_t I) { return I != 0 || P[0] == 0; },
      [&](const Permutation &) {
        ++Count;
        return true;
      });
  EXPECT_EQ(Count, 6u);
}

TEST(Permutation, VisitCanStopEarly) {
  size_t Count = 0;
  bool Completed = forEachPermutation(
      4, [](const Permutation &, size_t) { return true; },
      [&](const Permutation &) { return ++Count < 5; });
  EXPECT_FALSE(Completed);
  EXPECT_EQ(Count, 5u);
}

TEST(Permutation, InversionCount) {
  EXPECT_EQ(inversionCount(identityPermutation(4)), 0u);
  EXPECT_EQ(inversionCount({3, 2, 1, 0}), 6u);
  EXPECT_EQ(inversionCount({1, 0}), 1u);
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Format, Indent) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("", 2), "");
}

} // namespace
