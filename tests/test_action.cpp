//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for Action: the §3 classification of actions (memory access,
/// acquire, release, synchronisation, conflicts) and wildcard matching.
///
//===----------------------------------------------------------------------===//

#include "trace/Action.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId locX() { return Symbol::intern("x"); }
SymbolId locY() { return Symbol::intern("y"); }
SymbolId monM() { return Symbol::intern("m"); }

TEST(Action, FactoriesAndAccessors) {
  Action S = Action::mkStart(3);
  EXPECT_TRUE(S.isStart());
  EXPECT_EQ(S.entry(), 3u);

  Action R = Action::mkRead(locX(), 7);
  EXPECT_TRUE(R.isRead());
  EXPECT_EQ(R.location(), locX());
  EXPECT_EQ(R.value(), 7);
  EXPECT_FALSE(R.isWildcard());

  Action W = Action::mkWrite(locY(), 1, /*Volatile=*/true);
  EXPECT_TRUE(W.isWrite());
  EXPECT_TRUE(W.isVolatileAccess());

  Action L = Action::mkLock(monM());
  EXPECT_TRUE(L.isLock());
  EXPECT_EQ(L.monitor(), monM());

  Action X = Action::mkExternal(9);
  EXPECT_TRUE(X.isExternal());
  EXPECT_EQ(X.value(), 9);
}

TEST(Action, Section3Terminology) {
  Action NormalRead = Action::mkRead(locX(), 0);
  Action NormalWrite = Action::mkWrite(locX(), 0);
  Action VolRead = Action::mkRead(locX(), 0, true);
  Action VolWrite = Action::mkWrite(locX(), 0, true);
  Action Lock = Action::mkLock(monM());
  Action Unlock = Action::mkUnlock(monM());
  Action Ext = Action::mkExternal(0);
  Action Start = Action::mkStart(0);

  // Memory accesses.
  for (const Action &A : {NormalRead, NormalWrite, VolRead, VolWrite})
    EXPECT_TRUE(A.isMemoryAccess());
  for (const Action &A : {Lock, Unlock, Ext, Start})
    EXPECT_FALSE(A.isMemoryAccess());

  // Normal accesses are non-volatile accesses.
  EXPECT_TRUE(NormalRead.isNormalAccess());
  EXPECT_TRUE(NormalWrite.isNormalAccess());
  EXPECT_FALSE(VolRead.isNormalAccess());
  EXPECT_FALSE(VolWrite.isNormalAccess());

  // Acquire = lock or volatile read.
  EXPECT_TRUE(Lock.isAcquire());
  EXPECT_TRUE(VolRead.isAcquire());
  EXPECT_FALSE(Unlock.isAcquire());
  EXPECT_FALSE(VolWrite.isAcquire());
  EXPECT_FALSE(NormalRead.isAcquire());

  // Release = unlock or volatile write.
  EXPECT_TRUE(Unlock.isRelease());
  EXPECT_TRUE(VolWrite.isRelease());
  EXPECT_FALSE(Lock.isRelease());
  EXPECT_FALSE(VolRead.isRelease());
  EXPECT_FALSE(NormalWrite.isRelease());

  // Synchronisation = acquire or release.
  for (const Action &A : {Lock, Unlock, VolRead, VolWrite})
    EXPECT_TRUE(A.isSynchronisation());
  for (const Action &A : {NormalRead, NormalWrite, Ext, Start})
    EXPECT_FALSE(A.isSynchronisation());
}

struct ConflictCase {
  Action A;
  Action B;
  bool Conflicts;
  const char *Why;
};

class ConflictTest : public ::testing::TestWithParam<ConflictCase> {};

TEST_P(ConflictTest, MatchesSection3Definition) {
  const ConflictCase &C = GetParam();
  EXPECT_EQ(C.A.conflictsWith(C.B), C.Conflicts) << C.Why;
  EXPECT_EQ(C.B.conflictsWith(C.A), C.Conflicts) << C.Why << " (symmetric)";
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ConflictTest,
    ::testing::Values(
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1),
                     Action::mkWrite(Symbol::intern("x"), 2), true,
                     "write/write same location"},
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1),
                     Action::mkRead(Symbol::intern("x"), 0), true,
                     "write/read same location"},
        ConflictCase{Action::mkRead(Symbol::intern("x"), 0),
                     Action::mkRead(Symbol::intern("x"), 1), false,
                     "two reads never conflict"},
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1),
                     Action::mkWrite(Symbol::intern("y"), 1), false,
                     "different locations"},
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1, true),
                     Action::mkRead(Symbol::intern("x"), 0, true), false,
                     "volatile accesses never conflict (§3)"},
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1),
                     Action::mkRead(Symbol::intern("x"), 0, true), false,
                     "mixed volatility: the volatile access is not normal"},
        ConflictCase{Action::mkWrite(Symbol::intern("x"), 1),
                     Action::mkLock(Symbol::intern("m")), false,
                     "locks are not accesses"},
        ConflictCase{Action::mkWildcardRead(Symbol::intern("x")),
                     Action::mkWrite(Symbol::intern("x"), 3), true,
                     "wildcard reads access their location"}));

TEST(Action, WildcardMatchingAndInstantiation) {
  Action W = Action::mkWildcardRead(locX());
  EXPECT_TRUE(W.isWildcard());
  EXPECT_TRUE(W.matchesInstance(Action::mkRead(locX(), 0)));
  EXPECT_TRUE(W.matchesInstance(Action::mkRead(locX(), 5)));
  EXPECT_FALSE(W.matchesInstance(Action::mkRead(locY(), 0)));
  EXPECT_FALSE(W.matchesInstance(Action::mkRead(locX(), 0, true)));
  EXPECT_FALSE(W.matchesInstance(Action::mkWrite(locX(), 0)));
  EXPECT_EQ(W.instantiate(4), Action::mkRead(locX(), 4));
}

TEST(Action, ConcreteMatchesOnlyItself) {
  Action R = Action::mkRead(locX(), 1);
  EXPECT_TRUE(R.matchesInstance(Action::mkRead(locX(), 1)));
  EXPECT_FALSE(R.matchesInstance(Action::mkRead(locX(), 2)));
}

TEST(Action, TotalOrderIsConsistent) {
  Action A = Action::mkRead(locX(), 0);
  Action B = Action::mkRead(locX(), 1);
  EXPECT_TRUE(A < B || B < A);
  EXPECT_FALSE(A < A);
  EXPECT_EQ(A, Action::mkRead(locX(), 0));
}

TEST(Action, Rendering) {
  EXPECT_EQ(Action::mkStart(1).str(), "S(1)");
  EXPECT_EQ(Action::mkRead(locX(), 2).str(), "R[x=2]");
  EXPECT_EQ(Action::mkWildcardRead(locX()).str(), "R[x=*]");
  EXPECT_EQ(Action::mkWrite(locY(), 0, true).str(), "Wv[y=0]");
  EXPECT_EQ(Action::mkLock(monM()).str(), "L[m]");
  EXPECT_EQ(Action::mkUnlock(monM()).str(), "U[m]");
  EXPECT_EQ(Action::mkExternal(3).str(), "X(3)");
}

} // namespace
