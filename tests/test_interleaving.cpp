//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for Interleaving: §3's interleaving-of-traceset conditions,
/// sequential consistency, wildcard instances, adjacent races, behaviours.
///
//===----------------------------------------------------------------------===//

#include "trace/Interleaving.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId M() { return Symbol::intern("m"); }

TEST(Interleaving, TraceProjection) {
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {0, Action::mkWrite(X(), 1)},
                  {1, Action::mkRead(X(), 1)}});
  EXPECT_EQ(I.traceOf(0),
            (Trace{Action::mkStart(0), Action::mkWrite(X(), 1)}));
  EXPECT_EQ(I.traceOf(1),
            (Trace{Action::mkStart(1), Action::mkRead(X(), 1)}));
  EXPECT_EQ(I.traceOf(7), Trace());
  EXPECT_EQ(I.threads(), (std::vector<ThreadId>{0, 1}));
}

TEST(Interleaving, EntryPointConsistency) {
  Interleaving Good({{0, Action::mkStart(0)}, {1, Action::mkStart(1)}});
  EXPECT_TRUE(Good.entryPointsConsistent());
  // Start action carried by the wrong thread.
  Interleaving Wrong({{0, Action::mkStart(1)}});
  EXPECT_FALSE(Wrong.entryPointsConsistent());
  // Action before the thread's start.
  Interleaving Early({{0, Action::mkWrite(X(), 1)}});
  EXPECT_FALSE(Early.entryPointsConsistent());
  // Two starts.
  Interleaving Twice({{0, Action::mkStart(0)}, {0, Action::mkStart(0)}});
  EXPECT_FALSE(Twice.entryPointsConsistent());
}

TEST(Interleaving, MutualExclusion) {
  Interleaving Ok({{0, Action::mkStart(0)},
                   {1, Action::mkStart(1)},
                   {0, Action::mkLock(M())},
                   {0, Action::mkUnlock(M())},
                   {1, Action::mkLock(M())}});
  EXPECT_TRUE(Ok.respectsMutualExclusion());
  Interleaving Bad({{0, Action::mkStart(0)},
                    {1, Action::mkStart(1)},
                    {0, Action::mkLock(M())},
                    {1, Action::mkLock(M())}});
  EXPECT_FALSE(Bad.respectsMutualExclusion());
  // Re-entrant locking by the same thread is fine.
  Interleaving Reentrant({{0, Action::mkStart(0)},
                          {0, Action::mkLock(M())},
                          {0, Action::mkLock(M())}});
  EXPECT_TRUE(Reentrant.respectsMutualExclusion());
}

TEST(Interleaving, SeesMostRecentWrite) {
  Interleaving I({{0, Action::mkStart(0)},
                  {0, Action::mkWrite(X(), 1)},
                  {0, Action::mkWrite(X(), 2)},
                  {0, Action::mkRead(X(), 2)},
                  {0, Action::mkRead(Y(), 0)}});
  EXPECT_TRUE(I.isSequentiallyConsistent());
  EXPECT_EQ(I.mostRecentWriteBefore(3), std::optional<size_t>(2));
  EXPECT_EQ(I.mostRecentWriteBefore(4), std::nullopt); // Default value.
  Interleaving Stale({{0, Action::mkStart(0)},
                      {0, Action::mkWrite(X(), 1)},
                      {0, Action::mkRead(X(), 0)}});
  EXPECT_FALSE(Stale.isSequentiallyConsistent());
  Interleaving BadDefault({{0, Action::mkStart(0)},
                           {0, Action::mkRead(X(), 3)}});
  EXPECT_FALSE(BadDefault.isSequentiallyConsistent());
}

TEST(Interleaving, ExecutionOfTraceset) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1)});
  T.insert(Trace{Action::mkStart(1), Action::mkRead(X(), 0)});
  T.insert(Trace{Action::mkStart(1), Action::mkRead(X(), 1)});
  Interleaving Good({{0, Action::mkStart(0)},
                     {1, Action::mkStart(1)},
                     {0, Action::mkWrite(X(), 1)},
                     {1, Action::mkRead(X(), 1)}});
  EXPECT_TRUE(Good.isExecutionOf(T));
  // Same events, read sees a stale value: an interleaving but not an
  // execution.
  Interleaving Stale({{0, Action::mkStart(0)},
                      {1, Action::mkStart(1)},
                      {0, Action::mkWrite(X(), 1)},
                      {1, Action::mkRead(X(), 0)}});
  EXPECT_TRUE(Stale.isInterleavingOf(T));
  EXPECT_FALSE(Stale.isExecutionOf(T));
  // A thread trace outside the traceset.
  Interleaving Foreign({{0, Action::mkStart(0)},
                        {0, Action::mkWrite(Y(), 1)}});
  EXPECT_FALSE(Foreign.isInterleavingOf(T));
}

TEST(Interleaving, WildcardInstanceTakesMostRecentWrite) {
  Interleaving I({{0, Action::mkStart(0)},
                  {0, Action::mkWrite(X(), 7)},
                  {1, Action::mkStart(1)},
                  {1, Action::mkWildcardRead(X())},
                  {1, Action::mkWildcardRead(Y())}});
  EXPECT_TRUE(I.hasWildcards());
  Interleaving Inst = I.instance();
  EXPECT_FALSE(Inst.hasWildcards());
  EXPECT_EQ(Inst[3].Act, Action::mkRead(X(), 7));
  EXPECT_EQ(Inst[4].Act, Action::mkRead(Y(), DefaultValue));
  EXPECT_TRUE(Inst.isSequentiallyConsistent());
}

TEST(Interleaving, AdjacentRaceDetection) {
  Interleaving Race({{0, Action::mkStart(0)},
                     {1, Action::mkStart(1)},
                     {0, Action::mkWrite(X(), 1)},
                     {1, Action::mkRead(X(), 1)}});
  EXPECT_EQ(Race.findAdjacentRace(), std::optional<size_t>(2));
  // Same thread: no race.
  Interleaving SameThread({{0, Action::mkStart(0)},
                           {0, Action::mkWrite(X(), 1)},
                           {0, Action::mkRead(X(), 1)}});
  EXPECT_EQ(SameThread.findAdjacentRace(), std::nullopt);
  // Non-adjacent conflicting accesses are not a race by this definition.
  Interleaving Separated({{0, Action::mkStart(0)},
                          {1, Action::mkStart(1)},
                          {0, Action::mkWrite(X(), 1)},
                          {0, Action::mkWrite(Y(), 1)},
                          {1, Action::mkRead(X(), 1)}});
  EXPECT_EQ(Separated.findAdjacentRace(), std::nullopt);
}

TEST(Interleaving, BehaviourProjection) {
  Interleaving I({{0, Action::mkStart(0)},
                  {0, Action::mkExternal(3)},
                  {0, Action::mkWrite(X(), 1)},
                  {0, Action::mkExternal(1)}});
  EXPECT_EQ(I.behaviour(), (Behaviour{3, 1}));
  EXPECT_EQ(Interleaving().behaviour(), Behaviour{});
}

TEST(Interleaving, PrefixAndRendering) {
  Interleaving I({{0, Action::mkStart(0)}, {0, Action::mkExternal(1)}});
  EXPECT_EQ(I.prefix(1).size(), 1u);
  EXPECT_EQ(I.str(), "[(0,S(0)), (0,X(1))]");
}

} // namespace
