//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the unified budget/verdict layer: Budget accounting, spec
/// scaling, graceful truncation of the engines (no asserts, structured
/// Unknown verdicts), and escalation convergence.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "support/Budget.h"
#include "trace/Enumerate.h"
#include "verify/Escalate.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

using namespace tracesafe;

namespace {

//===----------------------------------------------------------------------===//
// Budget accounting
//===----------------------------------------------------------------------===//

TEST(Budget, UnlimitedSpecNeverExhausts) {
  Budget B((BudgetSpec()));
  for (int I = 0; I < 10'000; ++I)
    ASSERT_TRUE(B.charge(1024));
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::None);
  EXPECT_EQ(B.visited(), 10'000u);
}

TEST(Budget, StateCapIsStickyAndReported) {
  Budget B(BudgetSpec{0, /*MaxVisited=*/10, 0});
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(B.charge()) << "charge " << I;
  EXPECT_FALSE(B.charge());
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::StateCap);
  // Sticky: keeps failing, and stops counting.
  uint64_t Snapshot = B.visited();
  EXPECT_FALSE(B.charge());
  EXPECT_EQ(B.visited(), Snapshot);
}

TEST(Budget, MemoryCapFires) {
  Budget B(BudgetSpec{0, 0, /*MaxMemoryBytes=*/100});
  EXPECT_TRUE(B.charge(64));
  EXPECT_FALSE(B.charge(64));
  EXPECT_EQ(B.reason(), TruncationReason::MemoryCap);
}

TEST(Budget, DeadlineFires) {
  Budget B(BudgetSpec{/*DeadlineMs=*/1, 0, 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is only consulted every 256 charges, so spin a little.
  bool Exhausted = false;
  for (int I = 0; I < 1'000 && !Exhausted; ++I)
    Exhausted = !B.charge();
  EXPECT_TRUE(Exhausted);
  EXPECT_EQ(B.reason(), TruncationReason::Deadline);
}

TEST(Budget, SpecScalingClampsToCeiling) {
  BudgetSpec Initial{/*DeadlineMs=*/100, /*MaxVisited=*/1'000,
                     /*MaxMemoryBytes=*/0};
  BudgetSpec Ceiling{/*DeadlineMs=*/15'000, /*MaxVisited=*/2'000,
                     /*MaxMemoryBytes=*/512};
  BudgetSpec S = Initial.scaled(4, Ceiling);
  EXPECT_EQ(S.DeadlineMs, 400);
  EXPECT_EQ(S.MaxVisited, 2'000u); // 4000 clamped.
  EXPECT_EQ(S.MaxMemoryBytes, 512u); // Unlimited clamped to the ceiling.
}

TEST(Budget, UnlimitedCeilingLeavesFieldsAlone) {
  BudgetSpec Initial{10, 10, 10};
  BudgetSpec S = Initial.scaled(3, BudgetSpec{});
  EXPECT_EQ(S.DeadlineMs, 30);
  EXPECT_EQ(S.MaxVisited, 30u);
  EXPECT_EQ(S.MaxMemoryBytes, 30u);
}

TEST(Budget, MergeReasonPrefersSpecific) {
  EXPECT_EQ(mergeReason(TruncationReason::None, TruncationReason::Deadline),
            TruncationReason::Deadline);
  EXPECT_EQ(mergeReason(TruncationReason::StateCap, TruncationReason::None),
            TruncationReason::StateCap);
  EXPECT_EQ(mergeReason(TruncationReason::StateCap,
                        TruncationReason::Deadline),
            TruncationReason::StateCap);
}

//===----------------------------------------------------------------------===//
// Batched charging (Budget::Scope / CounterScope)
//===----------------------------------------------------------------------===//

TEST(BudgetScope, VisitedIsExactAtQuiescence) {
  // The block reservation (64 at a time) must be invisible once scopes
  // settle: for any charge count — including ones that are not a
  // multiple of the block — visited() equals the number of charges.
  for (uint64_t N : {1u, 63u, 64u, 65u, 1000u}) {
    Budget B(BudgetSpec{});
    {
      Budget::Scope S(&B);
      for (uint64_t I = 0; I < N; ++I)
        ASSERT_TRUE(S.charge());
    } // destructor settles
    EXPECT_EQ(B.visited(), N) << "charges=" << N;
  }
}

TEST(BudgetScope, StateCapFiresAtTheExactCharge) {
  // Reserving a block must not let charges beyond the cap through, nor
  // cut the budget short: with MaxVisited = 100, charges 1..100 succeed
  // and charge 101 fails — bit-identical to the unbatched Budget::charge.
  BudgetSpec Spec;
  Spec.MaxVisited = 100;
  Budget B(Spec);
  Budget::Scope S(&B);
  for (int I = 0; I < 100; ++I)
    ASSERT_TRUE(S.charge()) << "charge " << (I + 1);
  EXPECT_FALSE(S.charge());
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::StateCap);
}

TEST(BudgetScope, NullBudgetAlwaysSucceeds) {
  Budget::Scope S(nullptr);
  for (int I = 0; I < 200; ++I)
    ASSERT_TRUE(S.charge(1 << 20));
}

TEST(BudgetScope, ConcurrentScopesSettleExactly) {
  // Parallel tasks each hold their own scope; after the pool quiesces the
  // shared tally is the exact sum of all charges, independent of how the
  // block reservations interleaved.
  Budget B(BudgetSpec{});
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 777; // deliberately not block-aligned
  {
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&B] {
        Budget::Scope S(&B);
        for (uint64_t I = 0; I < PerThread; ++I)
          ASSERT_TRUE(S.charge());
      });
    for (auto &T : Ts)
      T.join();
  }
  EXPECT_EQ(B.visited(), Threads * PerThread);
}

TEST(BudgetScope, BytesChargeStillHonoursMemoryCap) {
  BudgetSpec Spec;
  Spec.MaxMemoryBytes = 10'000;
  Budget B(Spec);
  Budget::Scope S(&B);
  int Ok = 0;
  while (S.charge(1'000) && Ok < 1'000)
    ++Ok;
  EXPECT_EQ(Ok, 10); // the 11th kilobyte breaches the cap
  EXPECT_EQ(B.reason(), TruncationReason::MemoryCap);
}

TEST(CounterScope, IndicesAreUniqueAndExactAtQuiescence) {
  // next() hands out 1-based global indices from reserved blocks; across
  // concurrent scopes they must never collide, and once every scope has
  // settled the counter equals the number of indices consumed.
  std::atomic<uint64_t> Counter{0};
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 500;
  std::vector<std::vector<uint64_t>> Seen(Threads);
  {
    std::vector<std::thread> Ts;
    for (int T = 0; T < Threads; ++T)
      Ts.emplace_back([&Counter, &Seen, T] {
        CounterScope S(Counter);
        for (uint64_t I = 0; I < PerThread; ++I)
          Seen[T].push_back(S.next());
      });
    for (auto &T : Ts)
      T.join();
  }
  EXPECT_EQ(Counter.load(), Threads * PerThread);
  std::set<uint64_t> All;
  for (const auto &V : Seen)
    for (uint64_t I : V) {
      EXPECT_GE(I, 1u);
      EXPECT_TRUE(All.insert(I).second) << "index " << I << " duplicated";
    }
}

TEST(Verdict, Helpers) {
  Verdict<int> P = Verdict<int>::proved();
  EXPECT_TRUE(P.isProved());
  EXPECT_FALSE(P.Witness.has_value());

  Verdict<int> R = Verdict<int>::refuted(42);
  EXPECT_TRUE(R.isRefuted());
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(*R.Witness, 42);

  Verdict<int> U = Verdict<int>::unknown(TruncationReason::Deadline);
  EXPECT_TRUE(U.isUnknown());
  EXPECT_EQ(U.Reason, TruncationReason::Deadline);
}

//===----------------------------------------------------------------------===//
// Graceful truncation in the engines
//===----------------------------------------------------------------------===//

/// Three threads spinning on shared *volatile* flags: tiny to write down,
/// race free by construction (volatile accesses never race), and with an
/// interleaving space far beyond any small budget — the memo key includes
/// per-thread action counts, so loops multiply states combinatorially. A
/// DRF query on it can only end two ways: exhaustion of a huge search, or
/// a truncated Unknown.
Program explodingProgram() {
  return parseOrDie(R"(
volatile x, y;
thread {
  while (r0 == 0) { r0 := x; x := 1; x := 2; y := r0; r0 := y; x := 0; }
}
thread {
  while (r1 == 0) { r1 := y; y := 1; y := 2; x := r1; r1 := x; y := 0; }
}
thread {
  while (r2 == 0) { r2 := x; x := r2; r2 := y; y := r2; x := 2; y := 2; }
}
)");
}

TEST(Truncation, ProgramDrfReturnsUnknownOnStateCap) {
  Budget B(BudgetSpec{0, /*MaxVisited=*/500, 0});
  ExecLimits Limits;
  Limits.Shared = &B;
  Verdict<Interleaving> V = checkProgramDrf(explodingProgram(), Limits);
  // Pre-budget code asserted on truncation here; now it must report a
  // structured Unknown (never a Proved claim from a truncated search).
  ASSERT_TRUE(V.isUnknown());
  EXPECT_NE(V.Reason, TruncationReason::None);
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::StateCap);
}

TEST(Truncation, ExplodingProgramMeetsDeadline) {
  // The acceptance bar from the robustness issue: an exploding state space
  // must come back as Unknown within (about) the configured deadline —
  // no hang, no assert, no wrong answer.
  BudgetSpec Spec{/*DeadlineMs=*/200, 0, 0};
  Budget B(Spec);
  ExecLimits Limits;
  Limits.Shared = &B;
  auto Start = std::chrono::steady_clock::now();
  Verdict<Interleaving> V = checkProgramDrf(explodingProgram(), Limits);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  ASSERT_TRUE(V.isUnknown());
  // Generous slack over the 200ms deadline: the clock is polled every 256
  // charges and CI machines wobble, but seconds would mean a hang.
  EXPECT_LT(ElapsedMs, 5'000);
  // The wall-clock deadline — not a state cap — is what stopped the query.
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::Deadline);
}

TEST(Truncation, IsProgramDrfIsConservativeNotAsserting) {
  // Pre-budget code asserted !Truncated here (compiled out in release
  // builds, i.e. silently wrong). Now: false, because nothing was proved.
  Budget B(BudgetSpec{0, /*MaxVisited=*/200, 0});
  ExecLimits Limits;
  Limits.Shared = &B;
  Program P = explodingProgram();
  bool Drf = isProgramDrf(P, Limits);
  Verdict<Interleaving> V = checkProgramDrf(P, Limits);
  if (V.isUnknown()) {
    EXPECT_FALSE(Drf);
  }
}

TEST(Truncation, TracesetDrfReturnsUnknownOnTinyBudget) {
  Program P = parseOrDie("thread { r0 := x; x := 1; y := r0; }\n"
                         "thread { r1 := y; y := 1; x := r1; }");
  Traceset T = programTraceset(P, defaultDomainFor(P));
  Budget B(BudgetSpec{0, /*MaxVisited=*/3, 0});
  EnumerationLimits Limits;
  Limits.Shared = &B;
  Verdict<Interleaving> V = checkDataRaceFreedom(T, Limits);
  EXPECT_FALSE(V.isProved());
  EXPECT_FALSE(isDataRaceFree(T, Limits)); // Conservative, no assert.
}

TEST(Truncation, TracesetGenerationChargesSharedBudget) {
  Program P = parseOrDie("thread { r0 := x; x := r0; r1 := y; y := r1; }");
  Budget B(BudgetSpec{0, /*MaxVisited=*/5, 0});
  ExploreLimits Limits;
  Limits.Shared = &B;
  ExploreStats Stats;
  programTraceset(P, defaultDomainFor(P), Limits, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.Reason, TruncationReason::StateCap);
  EXPECT_TRUE(B.exhausted());
}

TEST(Truncation, ExhaustiveRunsStillProve) {
  // Sanity: with room to breathe the same queries stay definitive.
  Program Drf = parseOrDie("thread { lock m; x := 1; unlock m; }\n"
                           "thread { lock m; r0 := x; unlock m; }");
  Budget B(BudgetSpec{/*DeadlineMs=*/10'000, 1'000'000, 0});
  ExecLimits Limits;
  Limits.Shared = &B;
  EXPECT_TRUE(checkProgramDrf(Drf, Limits).isProved());

  Program Racy = parseOrDie("thread { x := 1; }\nthread { r0 := x; }");
  Verdict<Interleaving> V = checkProgramDrf(Racy, ExecLimits{});
  ASSERT_TRUE(V.isRefuted());
  EXPECT_TRUE(V.Witness.has_value());
}

//===----------------------------------------------------------------------===//
// Escalation
//===----------------------------------------------------------------------===//

TEST(Escalate, ConvergesFromTinyInitialBudget) {
  // DRF by lock discipline; needs a few thousand states — the first rung
  // (10 visits) must come back Unknown, a later rung proves it.
  Program P = parseOrDie("thread { lock m; x := 1; r0 := x; unlock m; }\n"
                         "thread { lock m; r1 := x; x := 2; unlock m; }");
  EscalationPolicy Policy;
  Policy.Initial = BudgetSpec{0, /*MaxVisited=*/10, 0};
  Policy.Growth = 100;
  Policy.MaxAttempts = 4;
  Policy.Ceiling = BudgetSpec{0, 10'000'000, 0};
  Escalated<Interleaving> E = escalateProgramDrf(P, Policy);
  EXPECT_TRUE(E.Final.isProved());
  ASSERT_GE(E.Attempts.size(), 2u);
  EXPECT_EQ(E.Attempts.front().Result, VerdictKind::Unknown);
  EXPECT_EQ(E.Attempts.back().Result, VerdictKind::Proved);
}

TEST(Escalate, RefutationStopsTheLadder) {
  Program Racy = parseOrDie("thread { x := 1; }\nthread { r0 := x; }");
  EscalationPolicy Policy;
  Policy.Initial = BudgetSpec{0, 1'000'000, 0};
  Policy.Ceiling = BudgetSpec{0, 10'000'000, 0};
  Escalated<Interleaving> E = escalateProgramDrf(Racy, Policy);
  EXPECT_TRUE(E.Final.isRefuted());
  EXPECT_EQ(E.Attempts.size(), 1u);
}

TEST(Escalate, StopsAtCeilingWithPartialHistory) {
  EscalationPolicy Policy;
  Policy.Initial = BudgetSpec{0, /*MaxVisited=*/100, 0};
  Policy.Growth = 10;
  Policy.MaxAttempts = 10;
  Policy.Ceiling = BudgetSpec{0, /*MaxVisited=*/1'000, 0};
  Escalated<Interleaving> E = escalateProgramDrf(explodingProgram(), Policy);
  EXPECT_FALSE(E.Final.isProved());
  // 100 -> 1000 (clamped) -> stop: the ladder must not spin at the ceiling.
  EXPECT_LE(E.Attempts.size(), 2u);
  for (const EscalationAttempt &A : E.Attempts)
    EXPECT_LE(A.Spec.MaxVisited, 1'000u);
}

TEST(Escalate, DrfGuaranteeReportsOutcome) {
  Program P = parseOrDie("thread { lock m; x := 1; unlock m; }\n"
                         "thread { lock m; r0 := x; unlock m; }");
  // Identity "transformation": the guarantee trivially holds.
  Escalated<DrfGuaranteeReport> E = escalateDrfGuarantee(P, P);
  EXPECT_TRUE(E.Final.isProved());
}

//===----------------------------------------------------------------------===//
// Cancellation and poisoning
//===----------------------------------------------------------------------===//

TEST(Budget, CancelTokenObservedWithinOneCheckInterval) {
  CancelToken Cancel;
  Cancel.request();
  Budget B(BudgetSpec{}, &Cancel);
  // The token is only consulted every 256 charges; it must stop the
  // budget no later than the first check.
  int Allowed = 0;
  while (B.charge() && Allowed < 10'000)
    ++Allowed;
  EXPECT_LT(Allowed, 256);
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::Cancelled);
  // Sticky after the token is observed.
  EXPECT_FALSE(B.charge());
}

TEST(Budget, CancelTokenResetRearms) {
  CancelToken Cancel;
  Cancel.request();
  EXPECT_TRUE(Cancel.requested());
  Cancel.reset();
  EXPECT_FALSE(Cancel.requested());
  Budget B(BudgetSpec{}, &Cancel);
  for (int I = 0; I < 1'000; ++I)
    ASSERT_TRUE(B.charge());
}

TEST(Budget, ChargeBytesHonoursDeadline) {
  Budget B(BudgetSpec{/*DeadlineMs=*/1, 0, 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Unlike charge(), chargeBytes consults the clock on every call — a
  // memory-only growth phase must not run past the wall clock.
  EXPECT_FALSE(B.chargeBytes(64));
  EXPECT_EQ(B.reason(), TruncationReason::Deadline);
}

TEST(Budget, ChargeBytesHonoursCancellation) {
  CancelToken Cancel;
  Cancel.request();
  Budget B(BudgetSpec{}, &Cancel);
  EXPECT_FALSE(B.chargeBytes(64));
  EXPECT_EQ(B.reason(), TruncationReason::Cancelled);
}

TEST(Budget, PoisonIsStickyAndFirstWriterWins) {
  Budget B((BudgetSpec()));
  ASSERT_TRUE(B.charge());
  B.poison(TruncationReason::EngineFault);
  EXPECT_FALSE(B.charge());
  EXPECT_FALSE(B.chargeBytes(1));
  EXPECT_EQ(B.reason(), TruncationReason::EngineFault);
  B.poison(TruncationReason::Deadline); // must not overwrite
  EXPECT_EQ(B.reason(), TruncationReason::EngineFault);
}

TEST(Budget, CancelledAndEngineFaultHaveNames) {
  EXPECT_STREQ(truncationReasonName(TruncationReason::Cancelled),
               "cancelled");
  EXPECT_STREQ(truncationReasonName(TruncationReason::EngineFault),
               "engine-fault");
}

} // namespace
