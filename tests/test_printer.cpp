//===----------------------------------------------------------------------===//
///
/// \file
/// Printer round-trip tests: print(parse(s)) parses back to an equal AST,
/// for a corpus of programs exercising every construct.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

class RoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTrip, PrintThenParseIsIdentity) {
  Program P = parseOrDie(GetParam());
  std::string Printed = printProgram(P);
  ParseResult R = parseProgram(Printed);
  ASSERT_TRUE(R) << "reparse failed: " << R.Error << "\n" << Printed;
  EXPECT_TRUE(P.equals(*R.Prog)) << Printed;
  // And printing again is a fixpoint.
  EXPECT_EQ(printProgram(*R.Prog), Printed);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "thread { skip; }",
        "thread { r1 := x; x := r1; x := 5; r1 := 0; r2 := r1; }",
        "volatile v; thread { v := 1; r1 := v; }",
        "volatile a, b; thread { a := 1; } thread { b := 1; }",
        "thread { lock m; unlock m; lock m2; unlock m2; }",
        "thread { print r1; print 7; }",
        "thread { if (r1 == r2) { skip; } else { x := 1; } }",
        "thread { if (r1 != 3) { r1 := 3; } else { skip; } }",
        "thread { while (r1 == 0) { r1 := 1; } }",
        "thread { { { skip; } } }",
        "thread { if (0 == 0) { while (r1 != 1) { r1 := 1; } } "
        "else { { print 2; } } }",
        "thread { x := 1; } thread { r1 := x; print r1; } "
        "thread { x := 2; }"));

TEST(Printer, StatementRendering) {
  Program P = parseOrDie("thread { r1 := x; }");
  EXPECT_EQ(printStmt(*P.thread(0)[0]), "r1 := x;");
  EXPECT_EQ(printStmt(*P.thread(0)[0], 4), "    r1 := x;");
}

TEST(Printer, ProgramHeaderListsVolatiles) {
  Program P = parseOrDie("volatile a, b; thread { skip; }");
  std::string S = printProgram(P);
  EXPECT_NE(S.find("volatile a, b;"), std::string::npos) << S;
}

} // namespace
