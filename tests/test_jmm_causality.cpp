//===----------------------------------------------------------------------===//
///
/// \file
/// Causality test cases in the style of the Java Memory Model's litmus
/// suite (Pugh et al.), adapted to the paper's arithmetic-free language.
/// §7 names the JMM as the motivation for validating optimisations; these
/// cases probe exactly the behaviours the paper's transformations justify:
///
///  - "allowed" outcomes must be *derivable*: some certified chain of
///    semantic eliminations/reorderings produces a program whose SC
///    executions exhibit the outcome;
///  - "forbidden" (out-of-thin-air) outcomes must remain impossible under
///    every transformation (Theorem 5).
///
/// The TC2 case additionally showcases the paper's main selling point: the
/// required if-collapse is invisible to the *syntactic* rules but is a
/// trace-preserving identity at the *semantic* level (§2.1).
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "opt/Rewrite.h"
#include "semantics/Composition.h"
#include "semantics/Reordering.h"
#include "tso/TsoExplain.h"
#include "verify/Checks.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// Asserts that \p Transformed is certified against \p Orig (elimination
/// then reordering) and that it exhibits \p Outcome under SC while the
/// original does not.
void expectDerivable(const char *Orig, const char *Transformed,
                     const Behaviour &Outcome) {
  Program O = parseOrDie(Orig);
  Program T = parseOrDie(Transformed);
  std::vector<Value> D = defaultDomainFor(O, 2);
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  ASSERT_EQ(R.Verdict, CheckVerdict::Holds)
      << "not a certified transformation; counterexample: "
      << R.Counterexample.str();
  EXPECT_FALSE(programBehaviours(O).count(Outcome))
      << "outcome already SC-reachable; the case is trivial";
  EXPECT_TRUE(programBehaviours(T).count(Outcome))
      << "transformed program does not exhibit the outcome";
}

// --- TC1 (adapted): a condition that is always true does not prevent the
// --- reordering. Observed: r1 = r2 = 1.
TEST(JmmCausality, TC1StyleAlwaysTrueGuard) {
  expectDerivable(
      R"(
thread { r1 := x; if (r1 == r1) { y := 1; } else { skip; } print r1; }
thread { r2 := y; x := r2; print r2; }
)",
      R"(
thread { y := 1; r1 := x; print r1; }
thread { r2 := y; x := r2; print r2; }
)",
      /*Outcome=*/{1, 1});
}

// --- TC2 (adapted): two reads of the same variable compared for equality;
// --- redundant read elimination collapses the guard. Observed: prints 1,1.
// --- This one genuinely needs a *chain*: first the E-RAR collapse (an
// --- elimination; the collapsed guard is then a trace-preserving
// --- identity), then the Fig 2 style elimination+reordering.
TEST(JmmCausality, TC2StyleRedundantReadGuard) {
  Program P0 = parseOrDie(R"(
thread {
  r1 := x;
  r2 := x;
  if (r1 == r2) { y := 1; } else { skip; }
  print r1;
}
thread { r3 := y; x := r3; print r3; }
)");
  // After E-RAR, `r2 := r1` makes the guard a tautology: the traceset is
  // that of the straight-line program.
  Program P1 = parseOrDie(R"(
thread { r1 := x; y := 1; print r1; }
thread { r3 := y; x := r3; print r3; }
)");
  Program P2 = parseOrDie(R"(
thread { y := 1; r1 := x; print r1; }
thread { r3 := y; x := r3; print r3; }
)");
  std::vector<Value> D = defaultDomainFor(P0, 2);
  std::vector<Traceset> Chain = {programTraceset(P0, D),
                                 programTraceset(P1, D),
                                 programTraceset(P2, D)};
  ChainReport Report = checkChain(
      Chain, {TransformKind::Elimination,
              TransformKind::EliminationThenReordering});
  EXPECT_TRUE(Report.linksHold());
  // The single-shot composite genuinely fails — the first read of x has no
  // Definition-1 justification once the write moved to the front.
  EXPECT_NE(checkEliminationThenReordering(Chain[0], Chain[2]).Verdict,
            CheckVerdict::Holds);
  // The outcome appears only at the end of the chain.
  EXPECT_FALSE(programBehaviours(P0).count(Behaviour{1, 1}));
  EXPECT_TRUE(programBehaviours(P2).count(Behaviour{1, 1}));
}

TEST(JmmCausality, TC2CollapseIsInvisibleToTheSyntacticRules) {
  // The guard collapse is beyond Fig 10/11: no rule chain reaches the
  // transformed program — yet the semantic checker certifies it. This is
  // the paper's "independence from syntax" advantage, checked.
  Program O = parseOrDie(R"(
thread {
  r1 := x;
  r2 := x;
  if (r1 == r2) { y := 1; } else { skip; }
  print r1;
}
thread { r3 := y; x := r3; print r3; }
)");
  bool Truncated = false;
  std::set<Behaviour> Reachable =
      reachableScBehaviours(O, 4, RuleSet::withExtensions(), {}, &Truncated);
  ASSERT_FALSE(Truncated);
  EXPECT_FALSE(Reachable.count(Behaviour{1, 1}))
      << "if a syntactic chain now reaches it, this showcase is stale";
}

// --- TC4/TC5 shape (forbidden): out-of-thin-air 42 through copy cycles.
TEST(JmmCausality, ThinAirCopyCycleStaysForbidden) {
  Program P = parseOrDie(R"(
thread { r1 := y; x := r1; print r1; }
thread { r2 := x; y := r2; }
)");
  // No transformation may output 42 (Theorem 5) — checked exhaustively
  // over 1/2-step chains plus the identity.
  ASSERT_FALSE(P.containsConstant(42));
  EXPECT_TRUE(checkThinAir(P, P, 42).holds());
  for (const RewriteSite &S1 :
       findRewriteSites(P, RuleSet::withExtensions())) {
    Program P1 = applyRewrite(P, S1);
    EXPECT_TRUE(checkThinAir(P, P1, 42).holds()) << S1.str();
    for (const RewriteSite &S2 :
         findRewriteSites(P1, RuleSet::withExtensions()))
      EXPECT_TRUE(checkThinAir(P, applyRewrite(P1, S2), 42).holds());
  }
}

// --- TC6 shape: an irrelevant guard on an unrelated variable.
TEST(JmmCausality, GuardOnUnrelatedVariableCollapses) {
  // z is written 1 by the same thread before the guard reads it, so the
  // guard is statically true after constant propagation through memory —
  // a pure elimination, then the write moves up by reordering.
  expectDerivable(
      R"(
thread {
  z := 1;
  r0 := z;
  r1 := x;
  if (r0 == 1) { y := 1; } else { skip; }
  print r1;
}
thread { r2 := y; x := r2; print r2; }
)",
      R"(
thread { z := 1; y := 1; r1 := x; print r1; }
thread { r2 := y; x := r2; print r2; }
)",
      /*Outcome=*/{1, 1});
}

// --- Volatile guard (forbidden): the same shape with a volatile flag must
// --- NOT be derivable — the read is an acquire, nothing crosses it.
TEST(JmmCausality, VolatileGuardBlocksTheDerivation) {
  Program O = parseOrDie(R"(
volatile x;
thread { r1 := x; if (r1 == r1) { y := 1; } else { skip; } print r1; }
thread { r2 := y; x := r2; print r2; }
)");
  Program T = parseOrDie(R"(
volatile x;
thread { y := 1; r1 := x; print r1; }
thread { r2 := y; x := r2; print r2; }
)");
  std::vector<Value> D = defaultDomainFor(O, 2);
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_NE(R.Verdict, CheckVerdict::Holds)
      << "moving a write before a volatile (acquire) read must fail";
}

} // namespace
