//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for transformation chains at the traceset level — the paper's
/// "any composition of these transformations is sound" (abstract, §5).
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "semantics/Composition.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Composition, ThreeLinkChainOnADrfProgram) {
  // P0: lock-protected duplicate accesses; apply E-RAW, then E-RAR, then a
  // roach-motel R-WL by hand, giving a four-element chain.
  Program P0 = parseOrDie(
      "thread { z := 1; lock m; x := 5; r1 := x; r2 := x; print r2; "
      "unlock m; }");
  Program P1 = parseOrDie(
      "thread { z := 1; lock m; x := 5; r1 := 5; r2 := x; print r2; "
      "unlock m; }");
  Program P2 = parseOrDie(
      "thread { z := 1; lock m; x := 5; r1 := 5; r2 := 5; print r2; "
      "unlock m; }");
  Program P3 = parseOrDie(
      "thread { lock m; z := 1; x := 5; r1 := 5; r2 := 5; print r2; "
      "unlock m; }");
  std::vector<Value> D = defaultDomainFor(P0, 2);
  std::vector<Traceset> Chain = {
      programTraceset(P0, D), programTraceset(P1, D), programTraceset(P2, D),
      programTraceset(P3, D)};
  std::vector<TransformKind> Kinds = {
      TransformKind::Elimination, TransformKind::Elimination,
      TransformKind::EliminationThenReordering};
  ChainReport Report = checkChainConclusion(Chain, Kinds);
  EXPECT_TRUE(Report.linksHold());
  EXPECT_TRUE(Report.OriginalDrf);
  EXPECT_TRUE(Report.FinalDrf);
  EXPECT_TRUE(Report.BehavioursPreserved);
  EXPECT_TRUE(Report.conclusionHolds());
}

TEST(Composition, BrokenLinkIsLocalised) {
  Program P0 = parseOrDie("thread { x := 1; print 1; }");
  Program P1 = parseOrDie("thread { print 1; }"); // Valid: last write.
  Program P2 = parseOrDie("thread { print 2; }"); // Invalid: new constant.
  std::vector<Value> D = {0, 1, 2};
  std::vector<Traceset> Chain = {
      programTraceset(P0, D), programTraceset(P1, D), programTraceset(P2, D)};
  std::vector<TransformKind> Kinds = {TransformKind::Elimination,
                                      TransformKind::Elimination};
  ChainReport Report = checkChain(Chain, Kinds);
  ASSERT_EQ(Report.Links.size(), 2u);
  EXPECT_EQ(Report.Links[0].Verdict, CheckVerdict::Holds);
  EXPECT_EQ(Report.Links[1].Verdict, CheckVerdict::Fails);
  EXPECT_FALSE(Report.linksHold());
}

TEST(Composition, SingleElementChainIsTrivial) {
  Program P = parseOrDie("thread { print 1; }");
  std::vector<Traceset> Chain = {programTraceset(P, {0, 1})};
  ChainReport Report = checkChainConclusion(Chain, {});
  EXPECT_TRUE(Report.linksHold());
  EXPECT_TRUE(Report.conclusionHolds());
  EXPECT_TRUE(Report.BehavioursPreserved);
}

TEST(Composition, RacyOriginalMakesTheConclusionVacuous) {
  // Fig 1's chain: behaviours change, the original is racy, and the
  // conclusion is vacuously fine while the links still verify.
  Program P0 = parseOrDie(R"(
thread { x := 2; y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := x; print r2; }
)");
  Program P1 = parseOrDie(R"(
thread { y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := r1; print r2; }
)");
  std::vector<Value> D = defaultDomainFor(P0, 3);
  std::vector<Traceset> Chain = {programTraceset(P0, D),
                                 programTraceset(P1, D)};
  ChainReport Report = checkChainConclusion(
      Chain, {TransformKind::Elimination});
  EXPECT_TRUE(Report.linksHold());
  EXPECT_FALSE(Report.OriginalDrf);
  EXPECT_FALSE(Report.BehavioursPreserved); // (1,0) is new...
  EXPECT_TRUE(Report.conclusionHolds());    // ...but vacuously allowed.
}

TEST(Composition, KindNames) {
  EXPECT_EQ(transformKindName(TransformKind::Elimination), "elimination");
  EXPECT_EQ(transformKindName(TransformKind::Reordering), "reordering");
  EXPECT_EQ(transformKindName(TransformKind::EliminationThenReordering),
            "elimination+reordering");
}

} // namespace
