//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the cross-query BehaviourCache: correctness of hits, warmth
/// invariance (a hit replays the original cost against the current
/// budget, so caps fire exactly where recomputation would have), fault
/// transparency (injected cache faults degrade to recomputation, never to
/// a changed answer), and the completeness rule (truncated results are
/// not cached).
///
//===----------------------------------------------------------------------===//

#include "verify/BehaviourCache.h"

#include "lang/Parser.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

Program sbProgram() {
  return parseOrDie(R"(
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)");
}

TEST(BehaviourCache, SecondLookupHitsAndReturnsTheSameTraceset) {
  BehaviourCache Cache;
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  ExploreLimits L;
  auto A = Cache.tracesetFor(P, Domain, L);
  auto B = Cache.tracesetFor(P, Domain, L);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->traces(), B->traces());
  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.TracesetMisses, 1u);
  EXPECT_EQ(S.TracesetHits, 1u);
}

TEST(BehaviourCache, HitMatchesRecomputation) {
  BehaviourCache Cache;
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, Domain, EL);
  ASSERT_TRUE(T);
  EnumerationLimits L;
  std::set<Behaviour> Cold = Cache.behavioursFor(*T, L);
  std::set<Behaviour> Warm = Cache.behavioursFor(*T, L);
  EXPECT_EQ(Cold, collectBehaviours(*T, L));
  EXPECT_EQ(Warm, Cold);
  EXPECT_EQ(Cache.stats().BehaviourHits, 1u);
}

TEST(BehaviourCache, WarmHitChargesTheBudgetLikeRecomputation) {
  BehaviourCache Cache;
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};

  // Cold run under a budget: record what a real computation charges.
  Budget Cold(BudgetSpec{});
  ExploreLimits L1;
  L1.Shared = &Cold;
  ASSERT_TRUE(Cache.tracesetFor(P, Domain, L1));
  uint64_t ColdVisits = Cold.visited();
  EXPECT_GT(ColdVisits, 0u);

  // Warm run under a fresh budget: the replay must charge the same visits.
  Budget Warm(BudgetSpec{});
  ExploreLimits L2;
  L2.Shared = &Warm;
  ASSERT_TRUE(Cache.tracesetFor(P, Domain, L2));
  EXPECT_EQ(Warm.visited(), ColdVisits);
  EXPECT_EQ(Cache.stats().TracesetHits, 1u);
}

TEST(BehaviourCache, WarmHitUnderTightBudgetReportsTruncation) {
  // Warmth invariance for verdicts: if recomputation would have exhausted
  // the budget, a hit must report the same exhaustion instead of handing
  // out a free complete answer.
  BehaviourCache Cache;
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  ExploreLimits L;
  ExploreStats Stats;
  ASSERT_TRUE(Cache.tracesetFor(P, Domain, L, &Stats));
  ASSERT_FALSE(Stats.Truncated);

  Budget Tight(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/1,
                          /*MaxMemoryBytes=*/0});
  ExploreLimits LT;
  LT.Shared = &Tight;
  ExploreStats WarmStats;
  auto T = Cache.tracesetFor(P, Domain, LT, &WarmStats);
  ASSERT_TRUE(T);
  EXPECT_TRUE(WarmStats.Truncated);
  EXPECT_EQ(WarmStats.Reason, TruncationReason::StateCap);
  EXPECT_TRUE(Tight.exhausted());
}

TEST(BehaviourCache, TruncatedResultsAreNotCached) {
  BehaviourCache Cache;
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  Budget Tiny(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/2,
                         /*MaxMemoryBytes=*/0});
  ExploreLimits L;
  L.Shared = &Tiny;
  ExploreStats Stats;
  Cache.tracesetFor(P, Domain, L, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.TracesetMisses, 1u);
  EXPECT_EQ(S.Bytes, 0u) << "a partial traceset must not be cached";

  // A later unconstrained query recomputes from scratch (another miss),
  // and only then does the complete result enter the cache.
  ExploreLimits Free;
  ASSERT_TRUE(Cache.tracesetFor(P, Domain, Free));
  S = Cache.stats();
  EXPECT_EQ(S.TracesetMisses, 2u);
  EXPECT_GT(S.Bytes, 0u);
}

TEST(BehaviourCache, InjectedFaultsDegradeToMissesNotWrongAnswers) {
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  ExploreLimits L;

  BehaviourCache Clean;
  auto Want = Clean.tracesetFor(P, Domain, L);
  ASSERT_TRUE(Want);

  BehaviourCache Faulty;
  FaultPlan Plan;
  // Fire on every probe: both the lookup and the insert of both calls.
  Plan.arm(FaultSite::BehaviourCache, /*FireAt=*/1, /*Repeat=*/100);
  {
    FaultPlan::Scope Armed(Plan);
    auto A = Faulty.tracesetFor(P, Domain, L);
    auto B = Faulty.tracesetFor(P, Domain, L);
    ASSERT_TRUE(A && B);
    EXPECT_EQ(A->traces(), Want->traces());
    EXPECT_EQ(B->traces(), Want->traces());
  }
  BehaviourCache::CacheStats S = Faulty.stats();
  EXPECT_GT(S.Faults, 0u);
  EXPECT_EQ(S.TracesetHits, 0u) << "faulted lookups must degrade to misses";
  EXPECT_GT(Plan.totalFired(), 0u);
}

TEST(BehaviourCache, OverflowClearsAndKeepsAnswering) {
  // A cache too small for any entry evicts on every insert but must stay
  // correct.
  BehaviourCache Tiny(/*MaxBytes=*/1);
  Program P = sbProgram();
  std::vector<Value> Domain{0, 1};
  ExploreLimits L;
  auto A = Tiny.tracesetFor(P, Domain, L);
  auto B = Tiny.tracesetFor(P, Domain, L);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->traces(), B->traces());
  EXPECT_EQ(Tiny.stats().TracesetHits, 0u);
}

TEST(BehaviourCache, SegmentedLruEvictsColdProbationBeforeWarmEntries) {
  Program P = sbProgram();
  ExploreLimits L;

  // Measure per-entry footprints with an unbounded probe cache: entries
  // keyed on three distinct domains, near-identical sizes.
  uint64_t BytesA, BytesB;
  {
    BehaviourCache Probe;
    ASSERT_TRUE(Probe.tracesetFor(P, {0, 1}, L));
    BytesA = Probe.stats().Bytes;
    ASSERT_TRUE(Probe.tracesetFor(P, {0, 2}, L));
    BytesB = Probe.stats().Bytes - BytesA;
    ASSERT_GT(BytesA, 0u);
    ASSERT_GT(BytesB, 0u);
  }

  // A cache that holds exactly A and B. Insert both, then *touch* A so it
  // is promoted to the protected segment; inserting C must evict the
  // probation tail (B), never the re-used A.
  BehaviourCache Cache(BytesA + BytesB);
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L)); // A: miss, probation
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 2}, L)); // B: miss, probation
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L)); // A: hit -> protected
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 3}, L)); // C: miss, evicts B

  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_EQ(S.Clears, 0u) << "overflow must evict entries, not clear";

  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L)); // A must still be warm
  EXPECT_EQ(Cache.stats().TracesetHits, 2u);
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 2}, L)); // B was the victim
  EXPECT_EQ(Cache.stats().TracesetMisses, 4u);
}

TEST(BehaviourCache, ScanTrafficDoesNotFlushTheWarmSet) {
  Program P = sbProgram();
  ExploreLimits L;
  uint64_t OneEntry;
  {
    BehaviourCache Probe;
    ASSERT_TRUE(Probe.tracesetFor(P, {0, 1}, L));
    OneEntry = Probe.stats().Bytes;
  }

  // Room for roughly three entries. A is inserted and re-used (protected);
  // a stream of one-shot lookups then washes through probation.
  BehaviourCache Cache(3 * OneEntry + OneEntry / 2);
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L));
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L)); // promote A
  for (Value V = 2; V <= 9; ++V)
    ASSERT_TRUE(Cache.tracesetFor(P, {0, V}, L)); // scan: seen once each

  BehaviourCache::CacheStats Before = Cache.stats();
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L));
  BehaviourCache::CacheStats After = Cache.stats();
  EXPECT_EQ(After.TracesetHits, Before.TracesetHits + 1)
      << "the scan must not have evicted the re-used entry";
  EXPECT_GE(After.Evictions, 1u);
}

TEST(BehaviourCache, WarmthInvarianceSurvivesEviction) {
  // The cost-replay property must hold whether an answer comes from the
  // cache or is recomputed after its entry was evicted: the budget sees
  // the same visit charge either way.
  Program P = sbProgram();
  ExploreLimits Plain;
  uint64_t OneEntry;
  {
    BehaviourCache Probe;
    ASSERT_TRUE(Probe.tracesetFor(P, {0, 1}, Plain));
    OneEntry = Probe.stats().Bytes;
  }

  BehaviourCache Cache(OneEntry + OneEntry / 2); // holds one entry
  Budget Cold(BudgetSpec{});
  ExploreLimits L1;
  L1.Shared = &Cold;
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L1));
  uint64_t ColdVisits = Cold.visited();

  // Evict it by inserting an unrelated entry, then re-query under a fresh
  // budget: recomputation must charge exactly the cold cost again.
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 2}, Plain));
  Budget Again(BudgetSpec{});
  ExploreLimits L2;
  L2.Shared = &Again;
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L2));
  EXPECT_EQ(Again.visited(), ColdVisits);
}

//===----------------------------------------------------------------------===//
// DRF verdict caching (drfFor)
//===----------------------------------------------------------------------===//

Program drfProgram() {
  return parseOrDie(R"(
thread { sync m { x := 1; x := 2; } }
thread { sync m { r0 := x; } print r0; }
)");
}

TEST(BehaviourCache, DrfWarmHitIsByteIdenticalAndReplaysCost) {
  // A cached race verdict must be indistinguishable from recomputation:
  // same kind, same witness, and the same visit charge against the
  // caller's budget (warmth invariance).
  BehaviourCache Cache;
  Program P = sbProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1}, EL);
  ASSERT_TRUE(T);

  Budget Cold(BudgetSpec{});
  EnumerationLimits L1;
  L1.Shared = &Cold;
  Verdict<Interleaving> A = Cache.drfFor(*T, L1);
  ASSERT_TRUE(A.isRefuted());
  uint64_t ColdVisits = Cold.visited();
  EXPECT_GT(ColdVisits, 0u);

  Budget Warm(BudgetSpec{});
  EnumerationLimits L2;
  L2.Shared = &Warm;
  Verdict<Interleaving> B = Cache.drfFor(*T, L2);
  ASSERT_TRUE(B.isRefuted());
  EXPECT_EQ(B.Witness->str(), A.Witness->str());
  EXPECT_EQ(Warm.visited(), ColdVisits);
  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.DrfMisses, 1u);
  EXPECT_EQ(S.DrfHits, 1u);
}

TEST(BehaviourCache, DrfProvedVerdictsCacheToo) {
  BehaviourCache Cache;
  Program P = drfProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1, 2}, EL);
  ASSERT_TRUE(T);
  EnumerationLimits L;
  EXPECT_TRUE(Cache.drfFor(*T, L).isProved());
  EXPECT_TRUE(Cache.drfFor(*T, L).isProved());
  EXPECT_EQ(Cache.stats().DrfHits, 1u);
}

TEST(BehaviourCache, DrfWarmHitUnderTightBudgetStaysUnknown) {
  // If recomputation would have exhausted this query's budget before
  // reaching the verdict, the hit must report the same exhaustion — no
  // free answers for warm callers.
  BehaviourCache Cache;
  Program P = sbProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1}, EL);
  ASSERT_TRUE(T);
  EnumerationLimits L;
  ASSERT_TRUE(Cache.drfFor(*T, L).isRefuted()); // cold, cached

  Budget Tight(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/1,
                          /*MaxMemoryBytes=*/0});
  EnumerationLimits LT;
  LT.Shared = &Tight;
  Verdict<Interleaving> V = Cache.drfFor(*T, LT);
  EXPECT_TRUE(V.isUnknown());
  EXPECT_EQ(V.Reason, TruncationReason::StateCap);
  EXPECT_TRUE(Tight.exhausted());
  EXPECT_EQ(Cache.stats().DrfHits, 1u) << "the truncated reply was a hit";
}

TEST(BehaviourCache, DrfUnknownVerdictsAreNotCached) {
  // An Unknown is an artefact of one query's budget; the next query with
  // headroom must recompute and only then populate the cache.
  BehaviourCache Cache;
  Program P = drfProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1, 2}, EL);
  ASSERT_TRUE(T);

  Budget Tiny(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/2,
                         /*MaxMemoryBytes=*/0});
  EnumerationLimits LT;
  LT.Shared = &Tiny;
  EXPECT_TRUE(Cache.drfFor(*T, LT).isUnknown());

  EnumerationLimits Free;
  EXPECT_TRUE(Cache.drfFor(*T, Free).isProved());
  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.DrfMisses, 2u);
  EXPECT_EQ(S.DrfHits, 0u);
}

TEST(BehaviourCache, DrfModelsKeySeparately) {
  // The same traceset queried under SC, TSO and PSO must occupy three
  // distinct cache slots — a verdict for one model must never answer for
  // another.
  BehaviourCache Cache;
  Program P = sbProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1}, EL);
  ASSERT_TRUE(T);
  EnumerationLimits L;
  Cache.drfFor(*T, L, BehaviourCache::DrfModel::Sc);
  Cache.drfFor(*T, L, BehaviourCache::DrfModel::Tso);
  Cache.drfFor(*T, L, BehaviourCache::DrfModel::Pso);
  EXPECT_EQ(Cache.stats().DrfMisses, 3u);
  EXPECT_EQ(Cache.stats().DrfHits, 0u);
  Cache.drfFor(*T, L, BehaviourCache::DrfModel::Tso);
  EXPECT_EQ(Cache.stats().DrfHits, 1u);
}

TEST(BehaviourCache, DrfInjectedFaultsDegradeToMissesNotWrongAnswers) {
  BehaviourCache Cache;
  Program P = sbProgram();
  ExploreLimits EL;
  auto T = Cache.tracesetFor(P, {0, 1}, EL);
  ASSERT_TRUE(T);
  EnumerationLimits L;
  Verdict<Interleaving> Want = Cache.drfFor(*T, L);
  ASSERT_TRUE(Want.isRefuted());

  BehaviourCache Faulty;
  auto T2 = Faulty.tracesetFor(P, {0, 1}, EL);
  ASSERT_TRUE(T2);
  FaultPlan Plan;
  Plan.arm(FaultSite::BehaviourCache, /*FireAt=*/1, /*Repeat=*/100);
  {
    FaultPlan::Scope Armed(Plan);
    Verdict<Interleaving> A = Faulty.drfFor(*T2, L);
    Verdict<Interleaving> B = Faulty.drfFor(*T2, L);
    ASSERT_TRUE(A.isRefuted());
    ASSERT_TRUE(B.isRefuted());
    EXPECT_EQ(A.Witness->str(), Want.Witness->str());
    EXPECT_EQ(B.Witness->str(), Want.Witness->str());
  }
  BehaviourCache::CacheStats S = Faulty.stats();
  EXPECT_GT(S.Faults, 0u);
  EXPECT_EQ(S.DrfHits, 0u) << "faulted lookups must degrade to misses";
}

TEST(BehaviourCache, KeysSeparateDomainsAndLimits) {
  BehaviourCache Cache;
  Program P = sbProgram();
  ExploreLimits L;
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, L));
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1, 2}, L));
  ExploreLimits Shorter;
  Shorter.MaxActions = 3;
  ASSERT_TRUE(Cache.tracesetFor(P, {0, 1}, Shorter));
  BehaviourCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.TracesetMisses, 3u)
      << "different domains/limits must not collide";
  EXPECT_EQ(S.TracesetHits, 0u);
}

} // namespace
