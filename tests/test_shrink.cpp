//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the counterexample shrinker and the differential fuzz
/// harness: candidate generation, greedy reduction, and the end-to-end
/// injected-failure path (find -> minimise -> write repro).
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Unsafe.h"
#include "verify/Checks.h"
#include "verify/Fuzz.h"
#include "verify/Shrink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace tracesafe;

namespace {

TEST(Shrink, CountStatementsCountsNestedOnes) {
  Program P = parseOrDie(R"(
thread {
  x := 1;
  if (r1 == 0) { skip; } else { print 1; }
  while (r1 != 0) { r1 := 0; }
}
thread { skip; }
)");
  // Thread 1: x:=1 (1), if + two branch blocks + skip + print (5),
  // while + body block + r1:=0 (3); thread 2: skip (1).
  EXPECT_EQ(countStatements(P), 10u);
}

TEST(Shrink, CandidatesAreStrictlySimpler) {
  Program P = parseOrDie(R"(
thread { x := 4; if (r1 == 0) { x := 2; } else { skip; } }
thread { r1 := x; print r1; }
)");
  size_t Size = countStatements(P);
  std::vector<Program> Cands = shrinkCandidates(P);
  EXPECT_FALSE(Cands.empty());
  for (const Program &C : Cands) {
    // Every candidate is no bigger, and round-trips through the printer
    // (i.e. is structurally valid).
    EXPECT_LE(countStatements(C), Size);
    if (C.threadCount() > 0) {
      EXPECT_TRUE(parseProgram(printProgram(C))) << printProgram(C);
    }
  }
}

TEST(Shrink, ReducesToSyntacticCore) {
  // Predicate: "the program still stores 7 to x". Everything else —
  // the second thread, the control flow, the other statements — must
  // shrink away.
  Program P = parseOrDie(R"(
thread {
  r1 := 5;
  x := 7;
  print r1;
  skip;
  if (r1 == 5) { skip; } else { print 2; }
}
thread { y := 1; skip; }
)");
  FailurePredicate Pred = [](const Program &Q) {
    return printProgram(Q).find("x := 7") != std::string::npos;
  };
  ASSERT_TRUE(Pred(P));
  ShrinkResult R = shrinkProgram(P, Pred);
  EXPECT_TRUE(Pred(R.Reduced));
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Reduced.threadCount(), 1u);
  EXPECT_EQ(countStatements(R.Reduced), 1u) << printProgram(R.Reduced);
  EXPECT_GT(R.CandidatesAccepted, 0u);
}

TEST(Shrink, FalsePredicateReturnsInputUnchanged) {
  Program P = parseOrDie("thread { skip; }");
  ShrinkResult R =
      shrinkProgram(P, [](const Program &) { return false; });
  EXPECT_EQ(countStatements(R.Reduced), countStatements(P));
  EXPECT_EQ(R.CandidatesAccepted, 0u);
}

TEST(Shrink, ReducedProgramStillReproducesLockElisionFailure) {
  // The real fuzzing predicate shape: transform the candidate with the
  // unsafe lock-elision pass and check the DRF guarantee definitively.
  Program P = parseOrDie(R"(
thread { lock m; x := 1; unlock m; print 3; skip; r2 := 0; }
thread { lock m; r1 := x; unlock m; skip; }
)");
  FailurePredicate Pred = [](const Program &Q) {
    if (Q.threadCount() == 0)
      return false;
    std::vector<LockPair> Pairs = findLockPairs(Q);
    if (Pairs.empty())
      return false;
    Program T = elideLockPair(Q, Pairs.front());
    return checkDrfGuarantee(Q, T).outcome() == GuaranteeOutcome::Violated;
  };
  ASSERT_TRUE(Pred(P)) << "seed failure must reproduce before shrinking";
  ShrinkResult R = shrinkProgram(P, Pred);
  EXPECT_TRUE(Pred(R.Reduced)) << printProgram(R.Reduced);
  EXPECT_LT(countStatements(R.Reduced), countStatements(P));
  // The minimal shape keeps both critical sections (6 statements): with
  // either lock pair gone the original is racy and the guarantee vacuous.
  EXPECT_GE(countStatements(R.Reduced), 4u);
}

TEST(Fuzz, CleanRunHasNoUninjectedFailures) {
  FuzzOptions Options;
  Options.Seed = 7;
  Options.Programs = 12;
  Options.CheckThinAir = true;
  Options.Escalation.Initial = BudgetSpec{100, 20'000, 32u << 20};
  Options.Escalation.MaxAttempts = 2;
  FuzzReport R = runFuzz(Options);
  EXPECT_EQ(R.ProgramsRun, 12u);
  EXPECT_GT(R.ChecksRun, 0u);
  EXPECT_EQ(R.uninjectedFailures(), 0u) << R.summary();
  // Machine-readable report stays well formed.
  EXPECT_NE(R.toJson().find("\"programs_run\": 12"), std::string::npos);
}

TEST(Fuzz, InjectedFailureIsFoundMinimisedAndWritten) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "tracesafe_fuzz_test")
          .string();
  std::filesystem::remove_all(Dir);

  FuzzOptions Options;
  Options.Seed = 3;
  Options.Programs = 20;
  Options.CheckThinAir = false; // DRF guarantee is what lock elision breaks.
  Options.InjectUnsafe = true;
  Options.InjectEvery = 1;
  Options.ReproDir = Dir;
  Options.Escalation.Initial = BudgetSpec{200, 50'000, 32u << 20};
  Options.Escalation.MaxAttempts = 2;
  Options.Shrink = ShrinkOptions{/*MaxRounds=*/8, /*MaxCandidates=*/200,
                                 /*DeadlineMs=*/5'000};
  FuzzReport R = runFuzz(Options);
  EXPECT_GT(R.InjectedRuns, 0u);
  ASSERT_FALSE(R.Failures.empty())
      << "injected unsafe passes must produce failures: " << R.summary();
  EXPECT_EQ(R.uninjectedFailures(), 0u) << R.summary();

  for (const FuzzFailure &F : R.Failures) {
    EXPECT_TRUE(F.Injected);
    EXPECT_LE(F.ReducedStmts, F.OriginalStmts);
    // The minimised repro reparses: it is a valid standalone .tsl file.
    ASSERT_FALSE(F.ReproPath.empty());
    std::ifstream Is(F.ReproPath);
    ASSERT_TRUE(Is.good()) << F.ReproPath;
    std::string Contents((std::istreambuf_iterator<char>(Is)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(Contents.find("// tracesafe fuzz repro"), std::string::npos);
    ParseResult Reparsed = parseProgram(F.ReducedSource);
    EXPECT_TRUE(Reparsed) << Reparsed.Error;
  }

  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Chain minimisation
//===----------------------------------------------------------------------===//

TEST(ChainShrink, SiteAppliesIsATotalCheck) {
  Program P = parseOrDie("thread { r1 := x; r2 := y; }\n");
  std::vector<RewriteSite> Sites = findRewriteSites(P);
  ASSERT_FALSE(Sites.empty());
  for (const RewriteSite &S : Sites)
    EXPECT_TRUE(siteApplies(P, S)) << S.str();

  // Dangling variants must return false, never assert.
  RewriteSite Bad = Sites.front();
  Bad.Path.Tid = 99;
  EXPECT_FALSE(siteApplies(P, Bad));
  Bad = Sites.front();
  Bad.I = 99;
  Bad.J = 100;
  EXPECT_FALSE(siteApplies(P, Bad));
  Bad = Sites.front();
  Bad.Path.Steps.push_back({0, PathSel::BlockBody});
  EXPECT_FALSE(siteApplies(P, Bad));
}

TEST(ChainShrink, ApplyChainReplaysAndRejectsDanglingSteps) {
  Program P = parseOrDie("thread { r1 := x; r2 := y; r3 := z; }\n");
  Rng R(11);
  TransformChain Chain = randomChain(P, RuleSet::all(), 4, R);
  ASSERT_FALSE(Chain.Steps.empty());
  std::optional<Program> Replayed = applyChain(P, Chain.Steps);
  ASSERT_TRUE(Replayed.has_value());
  EXPECT_EQ(printProgram(*Replayed), printProgram(Chain.Result));

  // An out-of-range site anywhere in the list makes the whole replay fail.
  std::vector<RewriteSite> Broken = Chain.Steps;
  Broken.front().I = 99;
  Broken.front().J = 100;
  EXPECT_FALSE(applyChain(P, Broken).has_value());
  // The empty chain is the identity.
  std::optional<Program> Id = applyChain(P, {});
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(printProgram(*Id), printProgram(P));
}

TEST(ChainShrink, RemovesEveryIrrelevantStep) {
  // Synthetic ddmin check, no programs involved: steps are "relevant" iff
  // their I field is even, and the predicate needs all relevant ones.
  std::vector<RewriteSite> Steps;
  for (size_t I = 0; I < 12; ++I) {
    RewriteSite S;
    S.Rule = RuleKind::RRR;
    S.I = I;
    S.J = I + 1;
    Steps.push_back(S);
  }
  auto Relevant = [](const RewriteSite &S) { return S.I % 2 == 0; };
  ChainFailurePredicate Pred =
      [&](const std::vector<RewriteSite> &Cand) {
        size_t N = 0;
        for (const RewriteSite &S : Cand)
          if (Relevant(S))
            ++N;
        return N == 6; // all six even-I steps still present
      };
  ASSERT_TRUE(Pred(Steps));
  ChainShrinkResult R = shrinkChain(Steps, Pred, {});
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Steps.size(), 6u);
  for (const RewriteSite &S : R.Steps)
    EXPECT_TRUE(Relevant(S));
  EXPECT_GT(R.CandidatesTried, 0u);
}

TEST(ChainShrink, EmptyChainIsConverged) {
  ChainShrinkResult R = shrinkChain(
      {}, [](const std::vector<RewriteSite> &) { return true; }, {});
  EXPECT_TRUE(R.Steps.empty());
  EXPECT_TRUE(R.Converged);
}

TEST(ChainShrink, ReducibleChainShrinksToNothing) {
  // Predicate holds for every subsequence: ddmin must reach the empty
  // chain (the strongest reduction).
  std::vector<RewriteSite> Steps(8);
  ChainShrinkResult R = shrinkChain(
      Steps, [](const std::vector<RewriteSite> &) { return true; }, {});
  EXPECT_TRUE(R.Steps.empty());
  EXPECT_TRUE(R.Converged);
}

TEST(ChainShrink, CandidateBudgetIsRespected) {
  std::vector<RewriteSite> Steps(16);
  for (size_t I = 0; I < Steps.size(); ++I)
    Steps[I].I = I;
  ShrinkOptions Options;
  Options.MaxCandidates = 3;
  uint64_t Calls = 0;
  ChainShrinkResult R = shrinkChain(
      Steps,
      [&](const std::vector<RewriteSite> &) {
        ++Calls;
        return false; // nothing ever removable
      },
      Options);
  EXPECT_LE(Calls, 3u);
  EXPECT_FALSE(R.Converged); // budget, not 1-minimality, ended the run
  EXPECT_EQ(R.Steps.size(), 16u);
}

TEST(ChainShrink, FuzzReportsMinimisedChains) {
  // End-to-end: a semantic-step violation found by the fuzzer carries a
  // minimised chain that is no longer than the original one.
  FuzzOptions Options;
  Options.Seed = 5;
  Options.Programs = 30;
  Options.CheckThinAir = false;
  Options.CheckSemanticSteps = true;
  Options.Escalation.Initial = BudgetSpec{100, 20'000, 32u << 20};
  Options.Escalation.MaxAttempts = 2;
  FuzzReport R = runFuzz(Options);
  for (const FuzzFailure &F : R.Failures) {
    if (F.Injected)
      continue;
    EXPECT_LE(F.ReducedChainSteps, F.ChainSteps);
  }
  // Healthy build: safe chains violate nothing, so this is usually empty;
  // the assertion above only bites when a genuine bug is found.
  EXPECT_EQ(R.uninjectedFailures(), 0u) << R.summary();
}

} // namespace
