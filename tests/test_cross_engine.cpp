//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-engine consistency properties (DESIGN.md decisions 2 and 3):
///
///  - the behaviours of [[P]]'s executions equal the behaviours of the
///    direct SC program executor;
///  - the adjacent-conflict race definition agrees with the
///    happens-before race definition;
///  - traceset-level DRF agrees with program-level DRF.
///
/// Checked over a handwritten corpus and seeded random programs.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "trace/Enumerate.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

void expectEnginesAgree(const Program &P, const std::string &Label) {
  std::vector<Value> Domain = defaultDomainFor(P, 2);
  ExploreStats GenStats;
  Traceset T = programTraceset(P, Domain, {}, &GenStats);
  ASSERT_FALSE(GenStats.Truncated) << Label;

  EnumerationStats SetStats;
  std::set<Behaviour> FromTraceset = collectBehaviours(T, {}, &SetStats);
  ASSERT_FALSE(SetStats.Truncated) << Label;

  ExecStats ExecStats_;
  std::set<Behaviour> FromProgram = programBehaviours(P, {}, &ExecStats_);
  ASSERT_FALSE(ExecStats_.Truncated) << Label;

  EXPECT_EQ(FromTraceset, FromProgram)
      << Label << ":\n" << printProgram(P);

  RaceReport Adjacent = findAdjacentRace(T);
  RaceReport Hb = findHappensBeforeRace(T);
  ASSERT_FALSE(Adjacent.Stats.Truncated) << Label;
  ASSERT_FALSE(Hb.Stats.Truncated) << Label;
  EXPECT_EQ(Adjacent.HasRace, Hb.HasRace)
      << Label << ": the two §3 race definitions disagree on\n"
      << printProgram(P);

  ProgramRaceReport Direct = findProgramRace(P);
  ASSERT_FALSE(Direct.Stats.Truncated) << Label;
  EXPECT_EQ(Adjacent.HasRace, Direct.HasRace)
      << Label << ": traceset- and program-level races disagree on\n"
      << printProgram(P);
}

class CorpusAgreement : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusAgreement, EnginesAgree) {
  expectEnginesAgree(parseOrDie(GetParam()), "corpus");
}

INSTANTIATE_TEST_SUITE_P(
    Handwritten, CorpusAgreement,
    ::testing::Values(
        "thread { x := 1; } thread { r1 := x; print r1; }",
        "thread { x := 2; y := 1; x := 1; } "
        "thread { r1 := y; print r1; r1 := x; r2 := x; print r2; }",
        "thread { r1 := x; y := r1; } "
        "thread { r2 := y; x := 1; print r2; }",
        "thread { lock m; x := 1; r3 := y; print r3; unlock m; } "
        "thread { lock m; y := 1; r4 := x; print r4; unlock m; }",
        "volatile v; thread { x := 1; v := 1; } "
        "thread { r1 := v; if (r1 == 1) { r2 := x; print r2; } "
        "else { skip; } }",
        "thread { unlock m; x := 1; } thread { lock m; unlock m; }",
        "thread { if (r1 == 0) { print 0; } else { print 1; } }",
        "thread { r1 := x; r2 := x; if (r1 == r2) { print 1; } "
        "else { print 2; } } thread { x := 1; }"));

struct GenCase {
  uint64_t Seed;
  GenDiscipline Discipline;
};

class RandomAgreement : public ::testing::TestWithParam<GenCase> {};

TEST_P(RandomAgreement, EnginesAgree) {
  GenOptions Options;
  Options.Discipline = GetParam().Discipline;
  Options.MaxStmtsPerThread = 4;
  Options.Locations = 2;
  Rng R(GetParam().Seed);
  Program P = generateProgram(R, Options);
  expectEnginesAgree(P, "seed " + std::to_string(GetParam().Seed));
}

std::vector<GenCase> genCases() {
  std::vector<GenCase> Out;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed)
    for (GenDiscipline D : {GenDiscipline::Racy, GenDiscipline::LockDiscipline,
                            GenDiscipline::VolatileLocations,
                            GenDiscipline::Mixed})
      Out.push_back(GenCase{Seed, D});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Seeded, RandomAgreement,
                         ::testing::ValuesIn(genCases()),
                         [](const auto &Info) {
                           const GenCase &C = Info.param;
                           std::string D =
                               C.Discipline == GenDiscipline::Racy ? "racy"
                               : C.Discipline == GenDiscipline::LockDiscipline
                                   ? "locked"
                               : C.Discipline == GenDiscipline::Mixed
                                   ? "mixed"
                                   : "volatile";
                           return D + "_seed" + std::to_string(C.Seed);
                         });

} // namespace
