//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for crash-safe resumable fuzz campaigns: the checkpoint journal,
/// cancellation mid-campaign, and the headline guarantee — a killed and
/// resumed campaign produces a byte-identical canonical report to an
/// uninterrupted run of the same (seed, programs) campaign.
///
//===----------------------------------------------------------------------===//

#include "verify/Fuzz.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <unistd.h>

using namespace tracesafe;

namespace {

/// Small, fast campaign exercising injection (so failure records cross the
/// journal too) but not thin air (traceset builds dominate runtime).
FuzzOptions campaign(const std::string &Journal) {
  FuzzOptions Options;
  Options.Seed = 20260807;
  Options.Programs = 24;
  Options.CheckThinAir = false;
  Options.InjectUnsafe = true;
  Options.InjectEvery = 3;
  Options.CheckpointPath = Journal;
  // Byte-identity across runs must not hinge on the wall clock: under a
  // loaded machine (parallel ctest) a 200ms query deadline can fire in
  // one run and not the other, changing the Unknown/escalation counts.
  // Visit caps are deterministic; keep only those.
  Options.Escalation.Initial.DeadlineMs = 0;
  Options.Escalation.Ceiling.DeadlineMs = 0;
  return Options;
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "tracesafe_" + Name + "_" +
         std::to_string(::getpid()) + ".journal";
}

std::string slurp(const std::string &Path) {
  std::ifstream Is(Path);
  return std::string(std::istreambuf_iterator<char>(Is), {});
}

TEST(Resume, ResumedCampaignMatchesUninterruptedByteForByte) {
  std::string Journal = tempPath("resume_basic");
  std::remove(Journal.c_str());

  FuzzOptions Base = campaign(/*Journal=*/"");
  FuzzReport Want = runFuzz(Base);
  ASSERT_EQ(Want.ProgramsRun, Base.Programs);

  // Cut the campaign short mid-flight via cancellation. The exact cut
  // point is scheduling-dependent (anywhere from 0 to all 24 indices) —
  // byte-identity of the merged report must hold for every cut point.
  CancelToken Cancel;
  FuzzOptions Cut = campaign(Journal);
  Cut.Cancel = &Cancel;
  std::thread Watchdog([&Cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Cancel.request();
  });
  FuzzReport Partial = runFuzz(Cut);
  Watchdog.join();
  ASSERT_LE(Partial.ProgramsRun, Base.Programs);

  FuzzOptions Rest = campaign(Journal);
  Rest.Resume = true;
  FuzzReport Merged = runFuzz(Rest);
  EXPECT_EQ(Merged.ProgramsRun, Base.Programs);
  EXPECT_EQ(Merged.SkippedFromCheckpoint, Partial.ProgramsRun);
  EXPECT_EQ(Merged.toJson(/*IncludeVolatile=*/false),
            Want.toJson(/*IncludeVolatile=*/false));
  std::remove(Journal.c_str());
}

TEST(Resume, TornTailAndGarbageLinesAreDiscarded) {
  std::string Journal = tempPath("resume_torn");
  std::remove(Journal.c_str());

  FuzzOptions Full = campaign(Journal);
  FuzzReport Want = runFuzz(Full);
  ASSERT_EQ(Want.ProgramsRun, Full.Programs);

  // Simulate a crash mid-record: an S line with no D commit marker, plus
  // assorted garbage. The loader must drop all of it and re-run only the
  // affected index (here: an index that is already committed, so nothing
  // re-runs — the point is that the tail does not corrupt the merge).
  {
    std::ofstream Os(Journal, std::ios::app);
    Os << "S\t3\t999\t999\t999\t999\t1\t0\t0\n" // torn: never committed
       << "F\t3\tnot-even-enough-fields\n"
       << "this is not a journal line\n"
       << "S\t9999\t1\t1\t1\t1\t0\t0\t0\nD\t9999\n" // out-of-range index
       << "S\t5\t1\t1\t"; // torn mid-line
  }
  FuzzOptions Rest = campaign(Journal);
  Rest.Resume = true;
  FuzzReport Merged = runFuzz(Rest);
  EXPECT_EQ(Merged.ProgramsRun, Full.Programs);
  EXPECT_EQ(Merged.SkippedFromCheckpoint, Full.Programs);
  EXPECT_EQ(Merged.toJson(false), Want.toJson(false));
  std::remove(Journal.c_str());
}

TEST(Resume, MismatchedHeaderDiscardsTheJournal) {
  std::string Journal = tempPath("resume_mismatch");
  std::remove(Journal.c_str());

  FuzzOptions First = campaign(Journal);
  FuzzReport Want = runFuzz(First);
  ASSERT_EQ(Want.ProgramsRun, First.Programs);

  // Same path, different seed: the journal describes another campaign and
  // every index must be re-run from scratch.
  FuzzOptions Other = campaign(Journal);
  Other.Seed = First.Seed + 1;
  Other.Resume = true;
  FuzzReport Fresh = runFuzz(Other);
  EXPECT_EQ(Fresh.SkippedFromCheckpoint, 0u);
  EXPECT_EQ(Fresh.ProgramsRun, Other.Programs);
  std::remove(Journal.c_str());
}

TEST(Resume, FullyJournaledCampaignReplaysWithoutRunning) {
  std::string Journal = tempPath("resume_replay");
  std::remove(Journal.c_str());

  FuzzOptions Full = campaign(Journal);
  FuzzReport Want = runFuzz(Full);

  FuzzOptions Replay = campaign(Journal);
  Replay.Resume = true;
  auto Start = std::chrono::steady_clock::now();
  FuzzReport Got = runFuzz(Replay);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  EXPECT_EQ(Got.SkippedFromCheckpoint, Full.Programs);
  EXPECT_EQ(Got.toJson(false), Want.toJson(false));
  // A pure replay merges records instead of re-verifying ~50 queries.
  EXPECT_LT(Ms, 5'000);
  std::remove(Journal.c_str());
}

TEST(Resume, CancelledReportSaysSo) {
  std::string Journal = tempPath("resume_cancelflag");
  std::remove(Journal.c_str());
  CancelToken Cancel;
  Cancel.request(); // cancelled before the campaign starts
  FuzzOptions Options = campaign(Journal);
  Options.Cancel = &Cancel;
  FuzzReport Report = runFuzz(Options);
  EXPECT_TRUE(Report.Cancelled);
  EXPECT_EQ(Report.ProgramsRun, 0u);
  // Volatile form carries the lifecycle fields; canonical form does not.
  EXPECT_NE(Report.toJson(true).find("\"cancelled\""), std::string::npos);
  EXPECT_EQ(Report.toJson(false).find("\"cancelled\""), std::string::npos);
  std::remove(Journal.c_str());
}

TEST(Resume, ParallelAndSequentialCampaignsAgree) {
  FuzzOptions Seq = campaign("");
  FuzzOptions Par = campaign("");
  Par.Jobs = 4;
  FuzzReport A = runFuzz(Seq);
  FuzzReport B = runFuzz(Par);
  EXPECT_EQ(A.toJson(false), B.toJson(false));
}

} // namespace
