//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for input actions — the paper's X(v) as an environment-supplied
/// *input*: parsing, semantics, cross-engine agreement, the reordering
/// rules, memory-model machines, and the thin-air caveat (values the
/// environment can supply are not out-of-thin-air).
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "opt/Rewrite.h"
#include "semantics/Reordering.h"
#include "trace/Enumerate.h"
#include "tso/TsoMachine.h"
#include "verify/Checks.h"
#include "verify/ProgramGen.h"
#include "verify/Theorems.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Input, ParsesAndPrints) {
  Program P = parseOrDie("thread { input r1; print r1; }");
  EXPECT_EQ(P.thread(0)[0]->kind(), StmtKind::Input);
  ParseResult Back = parseProgram(printProgram(P));
  ASSERT_TRUE(Back);
  EXPECT_TRUE(P.equals(*Back.Prog));
  EXPECT_FALSE(parseProgram("thread { input x; }")); // Not a register.
  EXPECT_FALSE(parseProgram("thread { input 3; }"));
}

TEST(Input, SmallStepBranchesOverTheDomain) {
  Program P = parseOrDie("thread { input r1; }");
  LangContext Ctx(P, {0, 1, 2});
  std::vector<Step> Steps = possibleSteps(initialThreadState(P, 0), Ctx);
  ASSERT_EQ(Steps.size(), 3u);
  std::set<Value> Seen;
  for (const Step &S : Steps) {
    ASSERT_TRUE(S.Act && S.Act->isExternal());
    Seen.insert(S.Act->value());
    EXPECT_EQ(S.Next.Regs.at(Symbol::intern("r1")), S.Act->value());
  }
  EXPECT_EQ(Seen, (std::set<Value>{0, 1, 2}));
}

TEST(Input, EchoBehaviours) {
  Program P = parseOrDie("thread { input r1; print r1; }");
  ExecLimits Limits;
  Limits.InputDomain = {0, 1, 2};
  std::set<Behaviour> Bs = programBehaviours(P, Limits);
  for (Value V : {0, 1, 2})
    EXPECT_TRUE(Bs.count(Behaviour{V, V}));
  EXPECT_FALSE(Bs.count(Behaviour{1, 2}));
}

TEST(Input, InputValuesFlowIntoMemory) {
  Program P = parseOrDie(R"(
thread { input r1; x := r1; }
thread { r2 := x; print r2; }
)");
  ExecLimits Limits;
  Limits.InputDomain = {0, 7};
  std::set<Behaviour> Bs = programBehaviours(P, Limits);
  EXPECT_TRUE(Bs.count(Behaviour{7, 7})); // Input 7, then read 7.
  EXPECT_TRUE(Bs.count(Behaviour{7, 0})); // Read before the store.
}

TEST(Input, CrossEngineAgreement) {
  Program P = parseOrDie(R"(
thread { input r1; x := r1; }
thread { r2 := x; print r2; }
)");
  std::vector<Value> D = defaultDomainFor(P, 2);
  std::set<Behaviour> FromTraceset =
      collectBehaviours(programTraceset(P, D));
  ExecLimits Limits;
  Limits.InputDomain = D;
  std::set<Behaviour> FromDirect = programBehaviours(P, Limits);
  EXPECT_EQ(FromTraceset, FromDirect);
}

TEST(Input, ExternalRulesApplyWithRegisterConditions) {
  auto HasRule = [](const char *Src, RuleKind K) {
    Program P = parseOrDie(Src);
    for (const RewriteSite &S :
         findRewriteSites(P, RuleSet::withExtensions()))
      if (S.Rule == K)
        return true;
    return false;
  };
  EXPECT_TRUE(HasRule("thread { input r1; r2 := x; }", RuleKind::RXR));
  EXPECT_FALSE(HasRule("thread { input r1; r1 := x; }", RuleKind::RXR));
  EXPECT_TRUE(HasRule("thread { input r1; x := r2; }", RuleKind::RXW));
  EXPECT_FALSE(HasRule("thread { input r1; x := r1; }", RuleKind::RXW));
  EXPECT_TRUE(HasRule("thread { r2 := x; input r1; }", RuleKind::RRX));
  EXPECT_FALSE(HasRule("thread { r1 := x; input r1; }", RuleKind::RRX));
  EXPECT_TRUE(HasRule("thread { x := r2; input r1; }", RuleKind::RWX));
  EXPECT_FALSE(HasRule("thread { x := r1; input r1; }", RuleKind::RWX));
}

TEST(Input, ReorderedInputIsAnEliminationThenReordering) {
  Program O = parseOrDie("thread { input r1; x := r2; print r1; }");
  std::vector<RewriteSite> Sites;
  for (const RewriteSite &S : findRewriteSites(O))
    if (S.Rule == RuleKind::RXW)
      Sites.push_back(S);
  ASSERT_EQ(Sites.size(), 1u);
  Program T = applyRewrite(O, Sites[0]);
  std::vector<Value> D = defaultDomainFor(O, 2);
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
  EXPECT_TRUE(checkDrfGuarantee(O, T).holds());
}

TEST(Input, TheoremHarnessOnInputPrograms) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::LockDiscipline;
  Options.AllowInput = true;
  Options.MaxStmtsPerThread = 4;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    Program P = generateProgram(R, Options);
    TransformChain Chain = randomChain(P, RuleSet::all(), 2, R);
    TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
    EXPECT_TRUE(Report.allHold())
        << Report.summary() << "\n" << printProgram(P);
  }
}

TEST(Input, TsoAndPsoHandleInputs) {
  Program P = parseOrDie(R"(
thread { input r1; x := r1; r2 := y; print r2; }
thread { y := 1; }
)");
  TsoLimits Limits;
  Limits.InputDomain = {0, 1};
  std::set<Behaviour> Tso = tsoBehaviours(P, Limits);
  ExecLimits ScLimits;
  ScLimits.InputDomain = {0, 1};
  for (const Behaviour &B : programBehaviours(P, ScLimits))
    EXPECT_TRUE(Tso.count(B));
}

TEST(Input, EnvironmentValuesAreNotThinAir) {
  // An input of 42 is an external action carrying 42 without a prior read:
  // by the §5 definition the trace *is* an origin for 42 — correctly so,
  // the environment supplied it. The guarantee only covers values the
  // program must manufacture itself.
  Program P = parseOrDie("thread { input r1; x := r1; }");
  std::vector<Value> D = {0, 42};
  Traceset T = programTraceset(P, D);
  EXPECT_TRUE(T.hasOriginFor(42));
  // Without 42 in the environment's repertoire, it stays impossible.
  ExecLimits Limits;
  Limits.InputDomain = {0, 1};
  EXPECT_FALSE(programCanOutput(P, 42, Limits));
}

TEST(Input, PairwiseChecksPinTheEnvironmentToTheOriginal) {
  // Dead-store elimination removes the only occurrence of constant 5; the
  // comparison must still run both programs against the original's input
  // domain, so the echoed 5 stays comparable.
  Program O = parseOrDie("thread { input r1; print r1; zz := 5; zz := 0; }");
  Program T = parseOrDie("thread { input r1; print r1; zz := 0; }");
  EXPECT_FALSE(T.containsConstant(5));
  BehaviourComparison C = compareBehaviours(O, T);
  EXPECT_TRUE(C.Subset);
  EXPECT_TRUE(C.Equal) << "input echo of 5 must exist on both sides";
  DrfGuaranteeReport G = checkDrfGuarantee(O, T);
  EXPECT_TRUE(G.holds());
}

TEST(Input, DataflowFactsDieAtInputs) {
  // input writes its register, so a fact held in that register dies.
  Program P = parseOrDie("thread { r1 := x; input r1; r2 := x; }");
  std::vector<RewriteSite> Sites;
  for (const RewriteSite &S : findRewriteSites(P))
    if (S.Rule == RuleKind::ERaR)
      Sites.push_back(S);
  EXPECT_TRUE(Sites.empty()) << "E-RAR must not reuse a clobbered register";
}

} // namespace
