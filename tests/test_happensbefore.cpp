//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the happens-before order (§3): program order,
/// synchronises-with, transitivity, and its use in the alternative
/// data-race-freedom definition.
///
//===----------------------------------------------------------------------===//

#include "trace/HappensBefore.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId V() { return Symbol::intern("v"); }
SymbolId M() { return Symbol::intern("m"); }

TEST(HappensBefore, ReleaseAcquirePairs) {
  EXPECT_TRUE(HappensBefore::isReleaseAcquirePair(Action::mkUnlock(M()),
                                                  Action::mkLock(M())));
  EXPECT_FALSE(HappensBefore::isReleaseAcquirePair(
      Action::mkUnlock(M()), Action::mkLock(Symbol::intern("m2"))));
  EXPECT_TRUE(HappensBefore::isReleaseAcquirePair(
      Action::mkWrite(V(), 1, true), Action::mkRead(V(), 1, true)));
  EXPECT_FALSE(HappensBefore::isReleaseAcquirePair(
      Action::mkWrite(V(), 1, true), Action::mkRead(X(), 1, true)));
  EXPECT_FALSE(HappensBefore::isReleaseAcquirePair(
      Action::mkWrite(X(), 1), Action::mkRead(X(), 1)));
  EXPECT_FALSE(HappensBefore::isReleaseAcquirePair(Action::mkLock(M()),
                                                   Action::mkUnlock(M())));
}

TEST(HappensBefore, ProgramOrderIsPerThreadAndReflexive) {
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {0, Action::mkWrite(X(), 1)},
                  {1, Action::mkRead(X(), 1)}});
  HappensBefore Hb(I);
  EXPECT_TRUE(Hb.ordered(0, 0));
  EXPECT_TRUE(Hb.ordered(0, 2)); // Same thread.
  EXPECT_FALSE(Hb.ordered(0, 1)); // Different threads, no sync.
  EXPECT_FALSE(Hb.ordered(2, 3)); // Racy pair is unordered.
  EXPECT_FALSE(Hb.ordered(2, 0)); // Never backwards.
}

TEST(HappensBefore, SynchronisesWithThroughMonitors) {
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {0, Action::mkLock(M())},
                  {0, Action::mkWrite(X(), 1)},
                  {0, Action::mkUnlock(M())},
                  {1, Action::mkLock(M())},
                  {1, Action::mkRead(X(), 1)},
                  {1, Action::mkUnlock(M())}});
  HappensBefore Hb(I);
  EXPECT_TRUE(Hb.ordered(4, 5)); // U <sw L.
  // Transitively: the write happens-before the read.
  EXPECT_TRUE(Hb.ordered(3, 6));
  // And the conflicting pair is ordered: no HB race.
  EXPECT_TRUE(Hb.ordered(3, 6) || Hb.ordered(6, 3));
}

TEST(HappensBefore, SynchronisesWithThroughVolatiles) {
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {0, Action::mkWrite(X(), 1)},
                  {0, Action::mkWrite(V(), 1, true)},
                  {1, Action::mkRead(V(), 1, true)},
                  {1, Action::mkRead(X(), 1)}});
  HappensBefore Hb(I);
  EXPECT_TRUE(Hb.ordered(3, 4)); // Volatile write <sw volatile read.
  EXPECT_TRUE(Hb.ordered(2, 5)); // Data write hb data read.
}

TEST(HappensBefore, NoSwAgainstInterleavingOrder) {
  // The volatile read precedes the volatile write here, so no sw edge.
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {1, Action::mkRead(V(), 0, true)},
                  {0, Action::mkWrite(V(), 1, true)}});
  HappensBefore Hb(I);
  EXPECT_FALSE(Hb.ordered(2, 3));
  EXPECT_FALSE(Hb.ordered(3, 2));
}

TEST(HappensBefore, DotExportListsNodesAndSwEdges) {
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {0, Action::mkUnlock(M())},
                  {1, Action::mkLock(M())}});
  std::string Dot = HappensBefore::toDot(I);
  EXPECT_NE(Dot.find("digraph hb"), std::string::npos);
  EXPECT_NE(Dot.find("U[m]"), std::string::npos);
  EXPECT_NE(Dot.find("sw"), std::string::npos);        // The U -> L edge.
  EXPECT_NE(Dot.find("n0 -> n2"), std::string::npos);  // Program order.
}

TEST(HappensBefore, TransitiveClosureChains) {
  // t0 -U-> t1 -U-> t2 via two different monitors.
  SymbolId M2 = Symbol::intern("m2");
  Interleaving I({{0, Action::mkStart(0)},
                  {1, Action::mkStart(1)},
                  {2, Action::mkStart(2)},
                  {0, Action::mkWrite(X(), 1)},
                  {0, Action::mkUnlock(M())},
                  {1, Action::mkLock(M())},
                  {1, Action::mkUnlock(M2)},
                  {2, Action::mkLock(M2)},
                  {2, Action::mkRead(X(), 1)}});
  // (Threads issue unlocks they can perform because the interleaving is
  // hand-built; HB only looks at the action sequence.)
  HappensBefore Hb(I);
  EXPECT_TRUE(Hb.ordered(3, 8)); // Write hb read across two hops.
}

} // namespace
