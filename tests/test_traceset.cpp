//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for Traceset: prefix closure, successor queries, the §4
/// belongs-to relation for wildcard traces, and validation.
///
//===----------------------------------------------------------------------===//

#include "trace/Traceset.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }

Traceset fig2Thread1() {
  // {[S(1), R[y=v], W[x=1], X(v)] | v in {0,1}} — Fig 2's second thread.
  Traceset T({0, 1});
  for (Value V : {0, 1})
    T.insert(Trace{Action::mkStart(1), Action::mkRead(Y(), V),
                   Action::mkWrite(X(), 1), Action::mkExternal(V)});
  return T;
}

TEST(Traceset, InsertMaintainsPrefixClosure) {
  Traceset T = fig2Thread1();
  EXPECT_TRUE(T.contains(Trace()));
  EXPECT_TRUE(T.contains(Trace{Action::mkStart(1)}));
  EXPECT_TRUE(T.contains(
      Trace{Action::mkStart(1), Action::mkRead(Y(), 0)}));
  EXPECT_TRUE(T.validate());
  // 1 empty + 1 start + 2 reads + 2 writes + 2 externals = 8.
  EXPECT_EQ(T.size(), 8u);
}

TEST(Traceset, SuccessorsOfPrefix) {
  Traceset T = fig2Thread1();
  std::vector<Action> S0 = T.successors(Trace());
  ASSERT_EQ(S0.size(), 1u);
  EXPECT_EQ(S0[0], Action::mkStart(1));
  std::vector<Action> S1 = T.successors(Trace{Action::mkStart(1)});
  EXPECT_EQ(S1.size(), 2u); // Reads of y=0 and y=1.
  for (const Action &A : S1)
    EXPECT_TRUE(A.isRead());
  EXPECT_TRUE(T.successors(Trace{Action::mkStart(9)}).empty());
}

TEST(Traceset, HasExtension) {
  Traceset T = fig2Thread1();
  EXPECT_TRUE(T.hasExtension(Trace()));
  EXPECT_TRUE(T.hasExtension(Trace{Action::mkStart(1)}));
  Trace Full{Action::mkStart(1), Action::mkRead(Y(), 0),
             Action::mkWrite(X(), 1), Action::mkExternal(0)};
  EXPECT_FALSE(T.hasExtension(Full));
}

TEST(Traceset, BelongsToRequiresAllInstances) {
  Traceset T = fig2Thread1();
  // [S(1), R[y=*]] belongs: both instances are prefixes.
  EXPECT_TRUE(T.belongsTo(Trace{Action::mkStart(1),
                                Action::mkWildcardRead(Y())}));
  // [S(1), R[y=*], W[x=1], X(0)] does not: the v=1 instance ends with X(1).
  EXPECT_FALSE(T.belongsTo(Trace{Action::mkStart(1),
                                 Action::mkWildcardRead(Y()),
                                 Action::mkWrite(X(), 1),
                                 Action::mkExternal(0)}));
  // Concrete traces degrade to containment.
  EXPECT_TRUE(T.belongsTo(Trace{Action::mkStart(1),
                                Action::mkRead(Y(), 1)}));
}

TEST(Traceset, PaperSection4BelongsToExample) {
  // §4: for the program "y:=1; r1:=x;  ||  r2:=y; x:=1; print r1" — the
  // wildcard trace [S(0), W[y=1], R[x=*]] belongs-to T, but
  // [S(0), W[y=1], R[x=*], X(1)] would not if some instances are missing.
  Traceset T({0, 1, 2});
  for (Value V : {0, 1, 2})
    T.insert(Trace{Action::mkStart(0), Action::mkWrite(Y(), 1),
                   Action::mkRead(X(), V)});
  // Only the instance with x=1 continues with X(1).
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(Y(), 1),
                 Action::mkRead(X(), 1), Action::mkExternal(1)});
  EXPECT_TRUE(T.belongsTo(Trace{Action::mkStart(0), Action::mkWrite(Y(), 1),
                                Action::mkWildcardRead(X())}));
  EXPECT_FALSE(T.belongsTo(Trace{Action::mkStart(0), Action::mkWrite(Y(), 1),
                                 Action::mkWildcardRead(X()),
                                 Action::mkExternal(1)}));
}

TEST(Traceset, EntryPoints) {
  Traceset T = fig2Thread1();
  T.insert(Trace{Action::mkStart(0), Action::mkRead(X(), 0)});
  std::vector<ThreadId> E = T.entryPoints();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_EQ(E[0], 0u);
  EXPECT_EQ(E[1], 1u);
}

TEST(Traceset, MaximalTraces) {
  Traceset T = fig2Thread1();
  std::vector<Trace> Max = T.maximalTraces();
  EXPECT_EQ(Max.size(), 2u);
  for (const Trace &M : Max)
    EXPECT_EQ(M.size(), 4u);
  EXPECT_EQ(T.maxTraceLength(), 4u);
}

TEST(Traceset, HasOriginFor) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkRead(X(), 1),
                 Action::mkWrite(Y(), 1)});
  EXPECT_FALSE(T.hasOriginFor(1)); // Write of 1 preceded by read of 1.
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(Y(), 1)});
  EXPECT_TRUE(T.hasOriginFor(1));
  EXPECT_FALSE(T.hasOriginFor(7));
}

TEST(Traceset, DefaultContainsOnlyEmptyTrace) {
  Traceset T;
  EXPECT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace()));
  EXPECT_TRUE(T.validate());
  EXPECT_TRUE(T.entryPoints().empty());
}

} // namespace
