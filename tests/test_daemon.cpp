//===----------------------------------------------------------------------===//
///
/// \file
/// In-process tests for the tracesafed server: verdict correctness against
/// the shared evaluateQuery oracle, structured Overloaded under
/// oversubscription (the daemon sheds, it never hangs), idempotent request
/// ids (a retry never recomputes or double-charges), per-request
/// cancellation, exception containment with oracle degradation, and the
/// client library's retry/backoff under injected transport faults.
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "racelog/Log.h"
#include "racelog/Synth.h"
#include "daemon/Server.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

/// Deterministic ceiling: no wall clock, so verdicts (including Visited)
/// are byte-identical across runs and machines.
const BudgetSpec TestCeiling{/*DeadlineMs=*/0, /*MaxVisited=*/200'000,
                             /*MaxMemoryBytes=*/128ULL << 20};

std::string uniqueSocket(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("tracesafed_test_" + std::string(Tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(Counter.fetch_add(1)) + ".sock"))
      .string();
}

/// Runs a server on a background thread for the duration of a test.
class ServerFixture {
public:
  explicit ServerFixture(ServerOptions O) : Opts(std::move(O)) {
    if (Opts.QuotaCeiling.DeadlineMs == 10'000) // default -> deterministic
      Opts.QuotaCeiling = TestCeiling;
    Opts.Stop = &Stop;
    Thread = std::thread([this] { Rc = runServer(Opts, &Stats); });
    // The listener is up once the socket path accepts a connection.
    for (int I = 0; I < 500; ++I) {
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                    Opts.SocketPath.c_str());
      bool Up = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
      ::close(Fd);
      if (Up)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "server did not come up on " << Opts.SocketPath;
  }

  ServerStats shutdown() {
    if (Thread.joinable()) {
      Stop.request();
      Thread.join();
    }
    EXPECT_EQ(Rc, 0);
    return Stats;
  }

  ~ServerFixture() {
    shutdown();
    std::remove(Opts.SocketPath.c_str());
    if (!Opts.JournalPath.empty())
      std::remove(Opts.JournalPath.c_str());
  }

  ServerOptions Opts;

private:
  CancelToken Stop;
  ServerStats Stats;
  int Rc = -1;
  std::thread Thread;
};

QueryRequest drfQuery(const std::string &Src) {
  QueryRequest Q;
  Q.Kind = QueryKind::ProgramDrf;
  Q.Program = Src;
  return Q;
}

/// Racy program with a deliberately large interleaving space: keeps a
/// query in flight long enough for admission control to be observable.
std::string slowProgram(unsigned Salt) {
  std::string P;
  for (int T = 0; T < 3; ++T) {
    P += "thread { ";
    for (int I = 0; I < 5; ++I)
      P += "x" + std::to_string(Salt) + " := " + std::to_string(I % 2) +
           "; r" + std::to_string(T) + " := x" + std::to_string(Salt) +
           "; ";
    P += "}\n";
  }
  return P;
}

TEST(Daemon, VerdictsMatchTheSharedEvaluator) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("verdicts");
  ServerFixture Server(O);

  std::vector<QueryRequest> Qs;
  Qs.push_back(drfQuery("thread { x := 1; }\nthread { r0 := x; }\n"));
  Qs.push_back(drfQuery(
      "thread { sync m { x := 1; } }\nthread { sync m { r0 := x; } }\n"));
  {
    QueryRequest Q;
    Q.Kind = QueryKind::Behaviours;
    Q.Program = "thread { x := 1; r0 := x; print r0; }\n";
    Qs.push_back(Q);
  }
  {
    QueryRequest Q;
    Q.Kind = QueryKind::DrfGuarantee;
    Q.Program = "thread { sync m { x := 1; x := 2; } }\n"
                "thread { sync m { r0 := x; print r0; } }\n";
    Q.Transformed = "thread { sync m { x := 2; } }\n"
                    "thread { sync m { r0 := x; print r0; } }\n";
    Qs.push_back(Q);
  }
  {
    QueryRequest Q;
    Q.Kind = QueryKind::ThinAir;
    Q.Program = "thread { r2 := y; x := r2; print r2; }\n"
                "thread { r1 := x; y := r1; }\n";
    Q.Transformed = Q.Program;
    Qs.push_back(Q);
  }

  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "verdict-test";
  DaemonClient Client(CO);
  std::vector<QueryResponse> Got = Client.callBatch(Qs);
  ASSERT_EQ(Got.size(), Qs.size());
  for (size_t I = 0; I < Qs.size(); ++I) {
    QueryResponse Want = evaluateQuery(Qs[I], TestCeiling);
    EXPECT_EQ(Got[I].str(), Want.str()) << "query " << I;
    EXPECT_EQ(Got[I].Status, ResponseStatus::Ok);
    EXPECT_NE(Got[I].Kind, VerdictKind::Unknown) << "query " << I;
  }

  ServerStats S = Server.shutdown();
  EXPECT_EQ(S.Admitted, Qs.size());
  EXPECT_EQ(S.Completed, Qs.size());
  EXPECT_EQ(S.Overloaded, 0u);
}

TEST(Daemon, BadRequestsAreStructuredNotFatal) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("badreq");
  ServerFixture Server(O);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "badreq-test";
  DaemonClient Client(CO);

  QueryResponse R = Client.call(drfQuery("thread { this is not a program"));
  EXPECT_EQ(R.Status, ResponseStatus::BadRequest);
  EXPECT_NE(R.Detail.find("parse error"), std::string::npos);

  // The connection and the server survive: a valid query still works.
  QueryResponse Ok = Client.call(drfQuery("thread { x := 1; }\n"));
  EXPECT_EQ(Ok.Status, ResponseStatus::Ok);
}

TEST(Daemon, OversubscriptionShedsWithStructuredOverloaded) {
  // 4x oversubscription against a queue of 2: the daemon must answer
  // every request — some Ok, some Overloaded — and never hang.
  ServerOptions O;
  O.SocketPath = uniqueSocket("overload");
  O.QueueCap = 2;
  O.PerClientCap = 2;
  ServerFixture Server(O);

  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "overload-test";
  CO.RetryOverloaded = false; // surface the shedding
  DaemonClient Client(CO);

  std::vector<QueryRequest> Qs;
  for (unsigned I = 0; I < 8; ++I)
    Qs.push_back(drfQuery(slowProgram(I)));
  std::vector<QueryResponse> Got = Client.callBatch(Qs);
  ASSERT_EQ(Got.size(), 8u);

  unsigned Ok = 0, Shed = 0;
  for (const QueryResponse &R : Got) {
    if (R.Status == ResponseStatus::Ok)
      ++Ok;
    else if (R.Status == ResponseStatus::Overloaded)
      ++Shed;
  }
  EXPECT_EQ(Ok + Shed, 8u) << "every request gets a structured answer";
  EXPECT_GE(Ok, 1u);
  EXPECT_GE(Shed, 1u) << "4x oversubscription must shed";
  ServerStats S = Server.shutdown();
  EXPECT_EQ(S.Overloaded, Shed);
  EXPECT_EQ(S.Admitted + S.Overloaded, 8u);
}

TEST(Daemon, OverloadedRetriesEventuallyComplete) {
  // Same oversubscription, but the client retries shed requests through
  // its backoff: everything completes, nothing hangs.
  ServerOptions O;
  O.SocketPath = uniqueSocket("retryover");
  O.QueueCap = 2;
  ServerFixture Server(O);

  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "retryover-test";
  CO.RetryOverloaded = true;
  CO.BackoffCapMs = 50;
  DaemonClient Client(CO);

  std::vector<QueryRequest> Qs;
  for (unsigned I = 0; I < 8; ++I)
    Qs.push_back(drfQuery(slowProgram(I)));
  std::vector<QueryResponse> Got = Client.callBatch(Qs);
  for (const QueryResponse &R : Got)
    EXPECT_EQ(R.Status, ResponseStatus::Ok);
}

TEST(Daemon, RetransmittedRequestIdsAreIdempotent) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("idem");
  ServerFixture Server(O);

  // Two clients with the same name and the same FirstRequestId simulate a
  // reconnecting client retransmitting its batch: the second submission
  // must replay stored verdicts, not recompute or re-admit.
  QueryRequest Q = drfQuery("thread { x := 1; }\nthread { r0 := x; }\n");
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "idem-test";
  CO.FirstRequestId = 1;
  QueryResponse First, Second;
  {
    DaemonClient A(CO);
    First = A.call(Q);
  }
  {
    DaemonClient B(CO); // same identity, same request id
    Second = B.call(Q);
  }
  EXPECT_EQ(First.str(), Second.str());
  ServerStats S = Server.shutdown();
  EXPECT_EQ(S.Admitted, 1u) << "the retry must not be re-admitted";
  EXPECT_EQ(S.Completed, 1u) << "the retry must not recompute";
  EXPECT_EQ(S.Replayed, 1u);
}

TEST(Daemon, CancelAbortsAnInflightQuery) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("cancel");
  // Big visit ceiling: the query would run a long time if not cancelled.
  O.QuotaCeiling = BudgetSpec{0, 50'000'000, 512ULL << 20};
  ServerFixture Server(O);

  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "cancel-test";
  DaemonClient Client(CO);

  std::string Big;
  for (int T = 0; T < 4; ++T) {
    Big += "thread { ";
    for (int I = 0; I < 6; ++I)
      Big += "x := " + std::to_string(I) + "; r" + std::to_string(T) +
             " := x; ";
    Big += "}\n";
  }
  uint64_t Id = Client.nextRequestId();
  std::thread Canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    DaemonClient Side(CO); // separate connection, same client name
    Side.cancel(Id);
  });
  QueryResponse R = Client.call(drfQuery(Big));
  Canceller.join();
  // Either the cancel landed (Unknown/Cancelled) or the query finished
  // first; it must never hang or crash.
  if (R.Kind == VerdictKind::Unknown) {
    EXPECT_EQ(R.Reason, TruncationReason::Cancelled);
  }
}

TEST(Daemon, EngineFaultsDegradeToTheSequentialOracle) {
  // A BehaviourCache fault inside the primary engine path must degrade
  // the query, not poison the daemon: the verdict is still computed (by
  // the oracle fallback or the cache's own recompute path) and later
  // queries are unaffected.
  ServerOptions O;
  O.SocketPath = uniqueSocket("degrade");
  ServerFixture Server(O);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "degrade-test";
  DaemonClient Client(CO);

  QueryRequest Q = drfQuery("thread { x := 1; }\nthread { r0 := x; }\n");
  QueryResponse Want = evaluateQuery(Q, TestCeiling);

  FaultPlan Plan;
  Plan.arm(FaultSite::BufferedIntern, 1, /*Repeat=*/1'000'000);
  Plan.arm(FaultSite::BehaviourCache, 1, /*Repeat=*/1'000'000);
  QueryResponse Got;
  {
    FaultPlan::Scope Armed(Plan);
    Got = Client.call(Q);
  }
  EXPECT_EQ(Got.Status, ResponseStatus::Ok);
  EXPECT_EQ(Got.Kind, Want.Kind) << "faults must not change the verdict";

  // Faults disarmed: the daemon answers normally again.
  QueryResponse After = Client.call(Q);
  EXPECT_EQ(After.Kind, Want.Kind);
}

TEST(Daemon, ClientRetriesThroughInjectedTransportFaults) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("retry");
  ServerFixture Server(O);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "retry-test";
  CO.MaxAttempts = 32;
  CO.BackoffCapMs = 20;
  DaemonClient Client(CO);

  // The plan is process-global, so fires may land on either end of the
  // socket (client write, server read, server write, client read) — every
  // one of them must surface as a retried transport error, never a wrong
  // or lost verdict.
  FaultPlan Plan;
  Plan.arm(FaultSite::ProtoRead, 3, /*Repeat=*/2);
  Plan.arm(FaultSite::ProtoWrite, 5, /*Repeat=*/2);
  std::vector<QueryRequest> Qs;
  for (unsigned I = 0; I < 6; ++I)
    Qs.push_back(drfQuery("thread { x := " + std::to_string(I % 2) +
                          "; }\nthread { r0 := x; }\n"));
  std::vector<QueryResponse> Got;
  {
    FaultPlan::Scope Armed(Plan);
    Got = Client.callBatch(Qs);
  }
  ASSERT_EQ(Got.size(), Qs.size());
  for (size_t I = 0; I < Qs.size(); ++I) {
    EXPECT_EQ(Got[I].Status, ResponseStatus::Ok) << I;
    EXPECT_EQ(Got[I].str(), evaluateQuery(Qs[I], TestCeiling).str()) << I;
  }
  EXPECT_GT(Plan.totalFired(), 0u) << "the faults must actually fire";
  EXPECT_GE(Client.stats().TransportErrors + Server.shutdown().ProtoErrors,
            1u);
}

TEST(Daemon, AcceptAndAdmissionFaultsAreSurvivable) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("acceptfault");
  ServerFixture Server(O);
  FaultPlan Plan;
  Plan.arm(FaultSite::Accept, 1, /*Repeat=*/2);
  Plan.arm(FaultSite::Admission, 1, /*Repeat=*/1);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "acceptfault-test";
  CO.MaxAttempts = 32;
  CO.BackoffCapMs = 20;
  QueryResponse R;
  {
    FaultPlan::Scope Armed(Plan);
    DaemonClient Client(CO);
    R = Client.call(drfQuery("thread { x := 1; }\n"));
  }
  EXPECT_EQ(R.Status, ResponseStatus::Ok);
  EXPECT_EQ(R.Kind, VerdictKind::Proved);
  ServerStats S = Server.shutdown();
  EXPECT_GE(S.AcceptFaults + S.Overloaded, 1u);
}

TEST(Daemon, ClampBudgetIsFieldWise) {
  BudgetSpec Ceiling{1000, 500, 1 << 20};
  BudgetSpec Unlimited{};
  BudgetSpec C = clampBudget(Unlimited, Ceiling);
  EXPECT_EQ(C.DeadlineMs, 1000);
  EXPECT_EQ(C.MaxVisited, 500u);
  EXPECT_EQ(C.MaxMemoryBytes, 1u << 20);
  BudgetSpec Tighter{10, 100, 1 << 10};
  C = clampBudget(Tighter, Ceiling);
  EXPECT_EQ(C.DeadlineMs, 10);
  EXPECT_EQ(C.MaxVisited, 100u);
  BudgetSpec Looser{100'000, 50'000, 1ULL << 40};
  C = clampBudget(Looser, Ceiling);
  EXPECT_EQ(C.DeadlineMs, 1000);
  EXPECT_EQ(C.MaxVisited, 500u);
  EXPECT_EQ(C.MaxMemoryBytes, 1u << 20);
  // A zero ceiling is unbounded: the request passes through.
  C = clampBudget(Looser, BudgetSpec{});
  EXPECT_EQ(C.MaxVisited, 50'000u);
}


TEST(Daemon, RaceLogQueriesAreServed) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("racelog");
  ServerFixture Server(O);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "racelog-test";
  DaemonClient Client(CO);

  auto logQuery = [](std::string Log) {
    QueryRequest Q;
    Q.Kind = QueryKind::RaceLog;
    Q.Program = std::move(Log); // binary log image rides the Program field
    return Q;
  };
  racelog::SynthOptions SO;
  SO.Events = 4000;
  SO.Threads = 6;
  SO.Seed = 5;

  // Racy and race-free logs get definitive verdicts, identical to the
  // shared evaluator's (the chaos suite's replay contract).
  QueryRequest Racy = logQuery(racelog::makeMixedLog(SO));
  QueryRequest Clean = logQuery(racelog::makeLockHeavyLog(SO));
  QueryResponse RacyR = Client.call(Racy);
  EXPECT_EQ(RacyR.Status, ResponseStatus::Ok);
  EXPECT_EQ(RacyR.Kind, VerdictKind::Refuted);
  EXPECT_EQ(RacyR.str(), evaluateQuery(Racy, TestCeiling).str());
  QueryResponse CleanR = Client.call(Clean);
  EXPECT_EQ(CleanR.Kind, VerdictKind::Proved);
  EXPECT_EQ(CleanR.str(), evaluateQuery(Clean, TestCeiling).str());

  // Garbage bytes are a structured BadRequest, not a crash; the
  // connection survives for the next query.
  QueryResponse Bad = Client.call(logQuery("this is not a TSRL log"));
  EXPECT_EQ(Bad.Status, ResponseStatus::BadRequest);
  EXPECT_NE(Bad.Detail.find("bad log"), std::string::npos);

  // A torn tail over a race-free prefix is Unknown, with the tail noted.
  std::string Torn = racelog::makeLockHeavyLog(SO);
  Torn.resize(Torn.size() - 11);
  QueryResponse TornR = Client.call(logQuery(Torn));
  EXPECT_EQ(TornR.Status, ResponseStatus::Ok);
  EXPECT_EQ(TornR.Kind, VerdictKind::Unknown);
  EXPECT_NE(TornR.Detail.find("torn-tail"), std::string::npos);

  // The per-query quota applies: a tiny visit cap truncates with a
  // structured state-cap reason, never a wrong verdict.
  QueryRequest Capped = logQuery(racelog::makeLockHeavyLog(SO));
  Capped.Budget.MaxVisited = 100;
  QueryResponse CappedR = Client.call(Capped);
  EXPECT_EQ(CappedR.Kind, VerdictKind::Unknown);
  EXPECT_EQ(CappedR.Reason, TruncationReason::StateCap);
  Server.shutdown();
}

TEST(Daemon, RaceLogRetransmissionsReplayStoredVerdicts) {
  ServerOptions O;
  O.SocketPath = uniqueSocket("racelogidem");
  ServerFixture Server(O);
  racelog::SynthOptions SO;
  SO.Events = 4000;
  QueryRequest Q;
  Q.Kind = QueryKind::RaceLog;
  Q.Program = racelog::makeMixedLog(SO);
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "racelog-idem";
  CO.FirstRequestId = 1;
  QueryResponse First, Second;
  {
    DaemonClient A(CO);
    First = A.call(Q);
  }
  {
    DaemonClient B(CO); // same identity, same request id: a retransmit
    Second = B.call(Q);
  }
  // Byte-identical replay relies on the scan's deterministic Visited
  // (one visit per ingested event, whatever the engine configuration).
  EXPECT_EQ(First.str(), Second.str());
  ServerStats S = Server.shutdown();
  EXPECT_EQ(S.Admitted, 1u);
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.Replayed, 1u);
}

} // namespace
