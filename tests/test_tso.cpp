//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the TSO store-buffer machine and the §8 "TSO as
/// transformations" claim.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "tso/Litmus.h"
#include "tso/PsoMachine.h"
#include "tso/TsoExplain.h"
#include "tso/TsoMachine.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(TsoMachine, TsoIsASupersetOfSC) {
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    std::set<Behaviour> Sc = programBehaviours(P);
    std::set<Behaviour> Tso = tsoBehaviours(P);
    for (const Behaviour &B : Sc)
      EXPECT_TRUE(Tso.count(B))
          << T.Name << ": SC behaviour missing under TSO";
  }
}

class LitmusSuite : public ::testing::TestWithParam<LitmusTest> {};

TEST_P(LitmusSuite, OutcomeMatchesTheModel) {
  const LitmusTest &T = GetParam();
  Program P = parseOrDie(T.Source);
  std::set<Behaviour> Sc = programBehaviours(P);
  std::set<Behaviour> Tso = tsoBehaviours(P);
  std::set<Behaviour> Pso = psoBehaviours(P);
  EXPECT_EQ(T.observedIn(Sc), T.ScAllows) << T.Name << " (SC)";
  EXPECT_EQ(T.observedIn(Tso), T.TsoAllows) << T.Name << " (TSO)";
  EXPECT_EQ(T.observedIn(Pso), T.PsoAllows) << T.Name << " (PSO)";
  // The relaxation hierarchy: SC within TSO within PSO.
  for (const Behaviour &B : Sc)
    EXPECT_TRUE(Tso.count(B)) << T.Name;
  for (const Behaviour &B : Tso)
    EXPECT_TRUE(Pso.count(B)) << T.Name;
}

INSTANTIATE_TEST_SUITE_P(AllLitmus, LitmusSuite,
                         ::testing::ValuesIn(litmusTests()),
                         [](const auto &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(TsoExplain, EveryLitmusTestIsExplainedByTransformations) {
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    TsoExplainResult R = explainTsoByTransformations(P, /*MaxDepth=*/3);
    EXPECT_FALSE(R.Truncated) << T.Name;
    EXPECT_TRUE(R.Explained)
        << T.Name << ": unexplained TSO behaviour of size "
        << R.Unexplained.size();
  }
}

TEST(TsoExplain, PsoBehavioursAreAlsoExplained) {
  // The §8 conjecture for the next model: PSO adds W->W reordering, which
  // R-WW covers, so the same transformation neighbourhood explains the
  // PSO-only behaviours too (checked against the SC union).
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    std::set<Behaviour> Pso = psoBehaviours(P);
    bool Truncated = false;
    std::set<Behaviour> Union =
        reachableScBehaviours(P, 3, {}, {}, &Truncated);
    ASSERT_FALSE(Truncated) << T.Name;
    for (const Behaviour &B : Pso)
      EXPECT_TRUE(Union.count(B))
          << T.Name << ": PSO behaviour of size " << B.size()
          << " not explained";
  }
}

TEST(TsoExplain, FencedSBNeedsNoTransformations) {
  // The volatile SB has identical SC and TSO behaviour sets already.
  Program P = parseOrDie(litmusTests()[1].Source);
  EXPECT_TRUE(tsoOnlyBehaviours(P).empty());
}

TEST(TsoMachine, DrfProgramsSeeNoTsoOnlyBehaviours) {
  // Lock-protected SB: DRF, so TSO (with fencing synchronisation) must be
  // observationally SC.
  Program P = parseOrDie(R"(
thread { lock m; x := 1; r1 := y; unlock m; print r1; }
thread { lock m; y := 1; r2 := x; unlock m; print r2; }
)");
  EXPECT_TRUE(isProgramDrf(P));
  EXPECT_TRUE(tsoOnlyBehaviours(P).empty());
}

TEST(TsoMachine, BufferBoundForcesTruncationFlag) {
  Program P = parseOrDie(R"(
thread { x := 1; x := 2; x := 3; r1 := y; print r1; }
thread { y := 1; }
)");
  TsoLimits Limits;
  Limits.MaxBufferedStores = 1;
  // With a tiny buffer the machine still terminates and SB-style delays are
  // limited to one store; all SC behaviours remain present.
  std::set<Behaviour> Tso = tsoBehaviours(P, Limits);
  for (const Behaviour &B : programBehaviours(P))
    EXPECT_TRUE(Tso.count(B));
}

} // namespace
