//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the streaming race detector: the TSRL log format's
/// valid-prefix robustness (torn tails, flipped bits, garbage headers,
/// unknown records), the happens-before semantics of the vector-clock
/// engines (locks, release joins, fork/join, read sharing), equivalence
/// of the epoch engine with the full-vector-clock oracle, determinism
/// across shard/worker configurations, budget discipline, and the
/// RaceDetect fault-injection site's containment contract.
///
//===----------------------------------------------------------------------===//

#include "racelog/Detect.h"
#include "racelog/Log.h"
#include "racelog/Synth.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

using namespace tracesafe;
using namespace tracesafe::racelog;

namespace {

std::string makeLog(const std::vector<LogEvent> &Events,
                    size_t PerBlock = DefaultEventsPerBlock) {
  LogWriter W(PerBlock);
  for (const LogEvent &E : Events)
    W.append(E);
  return W.finish();
}

LogEvent rd(uint32_t T, uint64_t A) { return {Op::Read, T, 0, A}; }
LogEvent wr(uint32_t T, uint64_t A) { return {Op::Write, T, 0, A}; }
LogEvent acq(uint32_t T, uint64_t L) { return {Op::Acquire, T, 0, L}; }
LogEvent rel(uint32_t T, uint64_t L) { return {Op::Release, T, 0, L}; }
LogEvent fork(uint32_t T, uint32_t U) { return {Op::Fork, T, U, 0}; }
LogEvent join(uint32_t T, uint32_t U) { return {Op::Join, T, U, 0}; }

/// (Addr, EventIndex, Tid, Write) — the engine-independent projection of a
/// race report (PrevTid may legitimately differ between the epoch engine
/// and the oracle when a location has several candidate prior accesses).
using RaceKey = std::tuple<uint64_t, uint64_t, uint32_t, bool>;
std::vector<RaceKey> keys(const RaceLogReport &R) {
  std::vector<RaceKey> Out;
  for (const RaceRecord &Rec : R.Races)
    Out.push_back({Rec.Addr, Rec.EventIndex, Rec.Tid, Rec.Write});
  return Out;
}

//===----------------------------------------------------------------------===//
// Format: codec and valid-prefix robustness
//===----------------------------------------------------------------------===//

TEST(RaceLogFormat, Crc32CheckValue) {
  // The standard reflected CRC-32 check value; pins interoperability with
  // the daemon's byte-at-a-time implementation.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(RaceLogFormat, RoundTripMultiBlock) {
  std::vector<LogEvent> In;
  for (uint32_t I = 0; I < 1000; ++I) {
    In.push_back(rd(I % 7, 100 + I % 13));
    In.push_back(wr(I % 5, 200 + I % 11));
    In.push_back(acq(I % 3, 8));
    In.push_back(rel(I % 3, 8));
    In.push_back(fork(0, 1 + I % 9));
  }
  std::string Log = makeLog(In, /*PerBlock=*/64);
  std::vector<LogEvent> Out;
  DecodedLog D;
  ASSERT_TRUE(decodeLog(Log, Out, &D));
  EXPECT_FALSE(D.TornTail);
  EXPECT_GT(D.Blocks, 70u);
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ(Out[I].Kind, In[I].Kind);
    EXPECT_EQ(Out[I].Tid, In[I].Tid);
    EXPECT_EQ(Out[I].Target, In[I].Target);
    EXPECT_EQ(Out[I].Addr, In[I].Addr);
  }
}

TEST(RaceLogFormat, EmptyAndGarbageAndShortHeaders) {
  std::vector<LogEvent> Sink;
  DecodedLog D;
  EXPECT_FALSE(decodeLog("", Sink, &D));
  EXPECT_EQ(D.Error, "empty file (no header)");
  EXPECT_FALSE(decodeLog("TSRL", Sink, &D)); // shorter than the header
  EXPECT_EQ(D.Error, "short file header");
  EXPECT_FALSE(decodeLog(std::string(64, 'x'), Sink, &D));
  EXPECT_EQ(D.Error, "bad file magic (not a TSRL log)");
  std::string Wrong = makeLog({});
  Wrong[4] = 9; // future format version
  EXPECT_FALSE(decodeLog(Wrong, Sink, &D));
  EXPECT_EQ(D.Error, "unsupported format version");

  // And the scanner agrees: an unusable header is Unknown, not a crash.
  RaceLogReport R = scanRaceLog(std::string(64, 'x'));
  EXPECT_FALSE(R.FormatOk);
  EXPECT_EQ(R.verdict(), VerdictKind::Unknown);
}

TEST(RaceLogFormat, HeaderOnlyLogIsValidAndRaceFree) {
  std::string Log = makeLog({});
  EXPECT_EQ(Log.size(), FileHeaderSize);
  RaceLogReport R = scanRaceLog(Log);
  EXPECT_TRUE(R.FormatOk);
  EXPECT_EQ(R.Stats.Events, 0u);
  EXPECT_EQ(R.verdict(), VerdictKind::Proved);
}

TEST(RaceLogFormat, TruncatedTailIsDroppedPrefixIsKept) {
  std::vector<LogEvent> In;
  for (uint32_t I = 0; I < 300; ++I)
    In.push_back(wr(0, I));
  std::string Log = makeLog(In, /*PerBlock=*/100);
  // Chop mid-way through the last block's payload (a crashed recorder).
  std::string Torn = Log.substr(0, Log.size() - 37);
  std::vector<LogEvent> Out;
  DecodedLog D;
  ASSERT_TRUE(decodeLog(Torn, Out, &D));
  EXPECT_TRUE(D.TornTail);
  EXPECT_EQ(Out.size(), 200u); // two intact blocks
  EXPECT_EQ(D.DroppedBytes, BlockHeaderSize + 100 * EventRecordSize - 37);

  RaceLogReport R = scanRaceLog(Torn);
  EXPECT_TRUE(R.FormatOk);
  EXPECT_TRUE(R.Stats.TornTail);
  EXPECT_EQ(R.Stats.Events, 200u);
  EXPECT_EQ(R.Stats.DroppedBytes, D.DroppedBytes);
  // Race-free prefix + torn tail: no definitive Proved.
  EXPECT_EQ(R.verdict(), VerdictKind::Unknown);
}

TEST(RaceLogFormat, FlippedBitFailsTheBlockCrc) {
  std::vector<LogEvent> In;
  for (uint32_t I = 0; I < 300; ++I)
    In.push_back(wr(0, I));
  std::string Log = makeLog(In, /*PerBlock=*/100);
  // Flip one payload bit in the *middle* block.
  size_t SecondPayload =
      FileHeaderSize + 2 * BlockHeaderSize + 100 * EventRecordSize + 40;
  std::string Bad = Log;
  Bad[SecondPayload] = static_cast<char>(Bad[SecondPayload] ^ 0x10);
  std::vector<LogEvent> Out;
  DecodedLog D;
  ASSERT_TRUE(decodeLog(Bad, Out, &D));
  EXPECT_TRUE(D.TornTail);
  EXPECT_EQ(Out.size(), 100u); // only the first block survives
  EXPECT_EQ(D.Blocks, 1u);
}

TEST(RaceLogFormat, UnknownRecordInsideValidBlockDropsTheTail) {
  std::vector<LogEvent> In;
  for (uint32_t I = 0; I < 200; ++I)
    In.push_back(rd(1, I));
  std::string Log = makeLog(In, /*PerBlock=*/100);
  // Corrupt a record *and* fix up the CRC: a "future recorder" wrote an op
  // this reader does not know. CRC passes; decode must still reject.
  size_t PayloadOff = FileHeaderSize + BlockHeaderSize;
  std::string Bad = Log;
  Bad[PayloadOff + 16 * 5] = 99; // invalid op byte in record 5, block 1
  uint32_t Crc = crc32(Bad.data() + PayloadOff, 100 * EventRecordSize);
  std::memcpy(Bad.data() + FileHeaderSize + 12, &Crc, 4);
  std::vector<LogEvent> Out;
  DecodedLog D;
  ASSERT_TRUE(decodeLog(Bad, Out, &D));
  EXPECT_TRUE(D.TornTail);
  EXPECT_EQ(Out.size(), 0u); // the whole containing block is dropped
  EXPECT_EQ(D.Blocks, 0u);

  RaceLogReport R = scanRaceLog(Bad);
  EXPECT_TRUE(R.Stats.TornTail);
  EXPECT_EQ(R.Stats.Events, 0u);
}

TEST(RaceLogFormat, WriterNeverSplitsARecordAcrossBlocks) {
  std::string Log = makeLog({wr(0, 1), wr(0, 2), wr(0, 3)}, /*PerBlock=*/2);
  BlockCursor Cur(Log);
  ASSERT_TRUE(Cur.ok());
  EXPECT_EQ(Cur.nextPayload().size(), 2 * EventRecordSize);
  EXPECT_EQ(Cur.nextPayload().size(), 1 * EventRecordSize);
  EXPECT_TRUE(Cur.nextPayload().empty());
  EXPECT_FALSE(Cur.tornTail());
}

//===----------------------------------------------------------------------===//
// Detection semantics
//===----------------------------------------------------------------------===//

TEST(RaceLogDetect, UnsynchronisedConflictIsARace) {
  RaceLogReport R = scanRaceLog(makeLog({wr(0, 7), wr(1, 7)}));
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_EQ(R.Races[0].Addr, 7u);
  EXPECT_EQ(R.Races[0].EventIndex, 1u);
  EXPECT_EQ(R.Races[0].Tid, 1u);
  EXPECT_EQ(R.Races[0].PrevTid, 0u);
  EXPECT_TRUE(R.Races[0].Write);
  EXPECT_TRUE(R.Races[0].PrevWrite);
  EXPECT_EQ(R.Stats.RacyLocations, 1u);
  EXPECT_EQ(R.verdict(), VerdictKind::Refuted);

  // Read-write and write-read flavours.
  RaceLogReport RW = scanRaceLog(makeLog({rd(0, 7), wr(1, 7)}));
  ASSERT_EQ(RW.Races.size(), 1u);
  EXPECT_TRUE(RW.Races[0].Write);
  EXPECT_FALSE(RW.Races[0].PrevWrite);
  RaceLogReport WR = scanRaceLog(makeLog({wr(0, 7), rd(1, 7)}));
  ASSERT_EQ(WR.Races.size(), 1u);
  EXPECT_FALSE(WR.Races[0].Write);
  EXPECT_TRUE(WR.Races[0].PrevWrite);
}

TEST(RaceLogDetect, ReadsNeverConflictAndSameThreadIsOrdered) {
  EXPECT_EQ(scanRaceLog(makeLog({rd(0, 7), rd(1, 7), rd(2, 7), rd(0, 7)}))
                .verdict(),
            VerdictKind::Proved);
  EXPECT_EQ(
      scanRaceLog(makeLog({wr(0, 7), rd(0, 7), wr(0, 7)})).verdict(),
      VerdictKind::Proved);
}

TEST(RaceLogDetect, LockDisciplineOrdersAccesses) {
  std::vector<LogEvent> Good = {acq(0, 2), wr(0, 7), rel(0, 2),
                                acq(1, 2), wr(1, 7), rel(1, 2)};
  EXPECT_EQ(scanRaceLog(makeLog(Good)).verdict(), VerdictKind::Proved);
  // Different locks do not synchronise.
  std::vector<LogEvent> Bad = {acq(0, 2), wr(0, 7), rel(0, 2),
                               acq(1, 4), wr(1, 7), rel(1, 4)};
  EXPECT_EQ(scanRaceLog(makeLog(Bad)).verdict(), VerdictKind::Refuted);
}

TEST(RaceLogDetect, ReleaseJoinsEveryEarlierRelease) {
  // This repo's §3 happens-before relates *any* earlier release of a lock
  // id to a later acquire (volatiles are modelled this way), so the lock
  // clock must accumulate both releasers — an overwrite-style release
  // would lose t0's and flag a false race on x.
  std::vector<LogEvent> L = {wr(0, 100), rel(0, 2), wr(1, 101), rel(1, 2),
                             acq(2, 2),  wr(2, 100), wr(2, 101)};
  EXPECT_EQ(scanRaceLog(makeLog(L)).verdict(), VerdictKind::Proved);
}

TEST(RaceLogDetect, ForkAndJoinEdges) {
  // Parent writes, forks child, child writes: ordered.
  EXPECT_EQ(scanRaceLog(makeLog({wr(0, 7), fork(0, 1), wr(1, 7)}))
                .verdict(),
            VerdictKind::Proved);
  // Child writes, parent joins it, parent writes: ordered.
  EXPECT_EQ(scanRaceLog(makeLog({wr(1, 7), join(0, 1), wr(0, 7)}))
                .verdict(),
            VerdictKind::Proved);
  // No edge: the same accesses race.
  EXPECT_EQ(scanRaceLog(makeLog({wr(0, 7), wr(1, 7)})).verdict(),
            VerdictKind::Refuted);
  // The fork edge is one-directional: the parent's *later* writes are not
  // ordered with the child.
  EXPECT_EQ(scanRaceLog(makeLog({fork(0, 1), wr(0, 7), wr(1, 7)}))
                .verdict(),
            VerdictKind::Refuted);
}

TEST(RaceLogDetect, ConcurrentReadersSpillAndAreCheckedOnWrite) {
  // Two unordered readers, then a write ordered after only one of them.
  std::vector<LogEvent> L = {rd(0, 7), rd(1, 7), rel(1, 2), acq(2, 2),
                             wr(2, 7)};
  RaceLogReport R = scanRaceLog(makeLog(L));
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_EQ(R.Races[0].EventIndex, 4u);
  EXPECT_EQ(R.Races[0].PrevTid, 0u); // the reader the write misses
  EXPECT_FALSE(R.Races[0].PrevWrite);
  EXPECT_GE(R.Stats.ReadShares, 1u);

  // Ordered after both: race-free, and the spill collapses back.
  std::vector<LogEvent> Ok = {rd(0, 7), rel(0, 2), rd(1, 7), rel(1, 3),
                              acq(2, 2), acq(2, 3), wr(2, 7), rd(2, 7),
                              wr(2, 7)};
  EXPECT_EQ(scanRaceLog(makeLog(Ok)).verdict(), VerdictKind::Proved);
}

TEST(RaceLogDetect, FirstRacePerLocationAndExactRacyCount) {
  std::vector<LogEvent> L;
  for (uint32_t A = 0; A < 10; ++A) {
    L.push_back(wr(0, 1000 + A));
    L.push_back(wr(1, 1000 + A)); // race; later accesses don't re-report
    L.push_back(wr(2, 1000 + A));
  }
  RaceLogOptions O;
  O.MaxRaces = 4;
  RaceLogReport R = scanRaceLog(makeLog(L), O);
  EXPECT_EQ(R.Races.size(), 4u);            // capped
  EXPECT_EQ(R.Stats.RacyLocations, 10u);    // exact
  for (size_t I = 0; I < R.Races.size(); ++I) {
    EXPECT_EQ(R.Races[I].Addr, 1000 + I);
    EXPECT_EQ(R.Races[I].EventIndex, 3 * I + 1); // the *second* access
  }
}

//===----------------------------------------------------------------------===//
// Engine equivalence and configuration determinism
//===----------------------------------------------------------------------===//

RaceLogReport scanCfg(const std::string &Log, unsigned Shards,
                      unsigned Workers, bool Epochs,
                      size_t Window = 1 << 16) {
  RaceLogOptions O;
  O.Shards = Shards;
  O.Workers = Workers;
  O.Epochs = Epochs;
  O.WindowEvents = Window;
  O.MaxRaces = 1 << 20;
  return scanRaceLog(Log, O);
}

TEST(RaceLogEngines, EpochAndOracleAgreeOnSynthWorkloads) {
  SynthOptions S;
  S.Events = 40000;
  S.Threads = 12;
  S.Locations = 512;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    S.Seed = Seed;
    for (const std::string &Log :
         {makeRaceFreeLog(S), makeMixedLog(S), makeLockHeavyLog(S)}) {
      RaceLogReport E = scanCfg(Log, 1, 1, /*Epochs=*/true);
      RaceLogReport V = scanCfg(Log, 1, 1, /*Epochs=*/false);
      EXPECT_EQ(keys(E), keys(V));
      EXPECT_EQ(E.Stats.RacyLocations, V.Stats.RacyLocations);
      EXPECT_EQ(E.Stats.Events, V.Stats.Events);
      EXPECT_EQ(E.verdict(), V.verdict());
    }
  }
}

TEST(RaceLogEngines, SynthMixesHaveTheAdvertisedRaceProfile) {
  SynthOptions S;
  S.Events = 30000;
  S.Threads = 8;
  S.Seed = 7;
  EXPECT_EQ(scanRaceLog(makeRaceFreeLog(S)).verdict(), VerdictKind::Proved);
  EXPECT_EQ(scanRaceLog(makeLockHeavyLog(S)).verdict(),
            VerdictKind::Proved);
  RaceLogReport M = scanRaceLog(makeMixedLog(S));
  EXPECT_EQ(M.verdict(), VerdictKind::Refuted);
  EXPECT_GT(M.Stats.RacyLocations, 0u);
}

TEST(RaceLogEngines, ShardAndWorkerConfigurationsAreBitIdentical) {
  SynthOptions S;
  S.Events = 30000;
  S.Threads = 16;
  S.Locations = 256;
  S.Seed = 11;
  for (const std::string &Log : {makeMixedLog(S), makeLockHeavyLog(S)}) {
    for (bool Epochs : {true, false}) {
      RaceLogReport Base = scanCfg(Log, 1, 1, Epochs);
      for (unsigned Shards : {2u, 4u, 8u}) {
        for (unsigned Workers : {1u, 4u}) {
          // Tiny window: many barriers, to stress the pipeline seams.
          RaceLogReport R = scanCfg(Log, Shards, Workers, Epochs, 512);
          EXPECT_EQ(Base.Races, R.Races)
              << "shards=" << Shards << " workers=" << Workers
              << " epochs=" << Epochs;
          EXPECT_EQ(Base.Stats.RacyLocations, R.Stats.RacyLocations);
          EXPECT_EQ(Base.Stats.ReadShares, R.Stats.ReadShares);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Budget discipline
//===----------------------------------------------------------------------===//

TEST(RaceLogBudget, VisitCapTruncatesAndVisitedIsDeterministic) {
  SynthOptions S;
  S.Events = 20000;
  S.Seed = 3;
  std::string Log = makeMixedLog(S);
  BudgetSpec Spec;
  Spec.MaxVisited = 5000;
  std::vector<uint64_t> Seen;
  for (unsigned Shards : {1u, 4u}) {
    Budget B(Spec);
    RaceLogOptions O;
    O.Shards = Shards;
    O.Shared = &B;
    RaceLogReport R = scanRaceLog(Log, O);
    EXPECT_TRUE(R.Stats.Truncated);
    EXPECT_EQ(R.Stats.Reason, TruncationReason::StateCap);
    // One visit per ingested event (the final, refused charge consumes
    // one more index), so the charge stream is identical for every
    // configuration — the daemon's idempotent-replay contract.
    EXPECT_EQ(R.Stats.Events + 1, B.visited());
    Seen.push_back(B.visited());
  }
  EXPECT_EQ(Seen[0], Seen[1]);
}

TEST(RaceLogBudget, UnbudgetedScanIsUnbounded) {
  SynthOptions S;
  S.Events = 5000;
  std::string Log = makeRaceFreeLog(S);
  RaceLogReport R = scanRaceLog(Log);
  EXPECT_FALSE(R.Stats.Truncated);
  EXPECT_GE(R.Stats.Events, S.Events);
}

TEST(RaceLogBudget, MemoryGrowthIsCharged) {
  SynthOptions S;
  S.Events = 20000;
  S.Locations = 4096;
  std::string Log = makeMixedLog(S);
  Budget B(BudgetSpec{});
  RaceLogOptions O;
  O.Shared = &B;
  scanRaceLog(Log, O);
  // State tables and clock spills grew; their real sizes were charged.
  EXPECT_GT(B.chargedBytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Fault injection: containment and exact replay
//===----------------------------------------------------------------------===//

TEST(RaceLogFault, InjectedDetectFaultIsContainedAsUnknown) {
  SynthOptions S;
  S.Events = 20000;
  std::string Log = makeRaceFreeLog(S);
  FaultPlan Plan;
  Plan.arm(FaultSite::RaceDetect, /*FireAt=*/3);
  Budget B(BudgetSpec{});
  RaceLogOptions O;
  O.Shared = &B;
  {
    FaultPlan::Scope Armed(Plan);
    RaceLogReport R = scanRaceLog(Log, O);
    EXPECT_TRUE(R.Stats.Truncated);
    EXPECT_EQ(R.Stats.Reason, TruncationReason::EngineFault);
    EXPECT_EQ(R.verdict(), VerdictKind::Unknown);
  }
  // The budget was poisoned so sibling engines of the query unwind too.
  EXPECT_EQ(B.reason(), TruncationReason::EngineFault);
  EXPECT_EQ(Plan.fired(FaultSite::RaceDetect), 1u);
  EXPECT_EQ(Plan.hits(FaultSite::RaceDetect), 3u); // fired on block 3

  // Exact replay: the same (plan, log) pair fires at the same hit.
  FaultPlan Replay;
  Replay.arm(FaultSite::RaceDetect, 3);
  {
    FaultPlan::Scope Armed(Replay);
    scanRaceLog(Log);
  }
  EXPECT_EQ(Replay.hits(FaultSite::RaceDetect), 3u);
  // And the engine is immediately reusable after containment.
  EXPECT_EQ(scanRaceLog(Log).verdict(), VerdictKind::Proved);
}

TEST(RaceLogFault, ReportStrMentionsTheOutcome) {
  EXPECT_NE(scanRaceLog(makeLog({wr(0, 7), wr(1, 7)})).str().find("races:"),
            std::string::npos);
  EXPECT_NE(scanRaceLog(makeLog({})).str().find("race-free"),
            std::string::npos);
  EXPECT_NE(scanRaceLog("garbage-not-a-log-012345").str().find("bad-log"),
            std::string::npos);
}

} // namespace
