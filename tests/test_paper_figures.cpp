//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests reproducing the paper's worked examples: the §1
/// introduction example, Fig 1 (elimination), Fig 2 (reordering), Fig 3
/// (irrelevant read introduction) and the §5 out-of-thin-air program.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Explore.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"
#include "semantics/Elimination.h"
#include "semantics/Reordering.h"
#include "verify/Checks.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

bool hasBehaviour(const std::set<Behaviour> &Bs, std::vector<Value> B) {
  return Bs.count(B) != 0;
}

// --- Fig 1: elimination example -----------------------------------------

const char *Fig1Original = R"(
thread {
  x := 2;
  y := 1;
  x := 1;
}
thread {
  r1 := y;
  print r1;
  r1 := x;
  r2 := x;
  print r2;
}
)";

const char *Fig1Transformed = R"(
thread {
  y := 1;
  x := 1;
}
thread {
  r1 := y;
  print r1;
  r1 := x;
  r2 := r1;
  print r2;
}
)";

TEST(Fig1Elimination, OriginalCannotPrint1Then0) {
  Program P = parseOrDie(Fig1Original);
  std::set<Behaviour> Bs = programBehaviours(P);
  EXPECT_FALSE(hasBehaviour(Bs, {1, 0}));
  EXPECT_TRUE(hasBehaviour(Bs, {1, 1}));
  EXPECT_TRUE(hasBehaviour(Bs, {0, 0}));
}

TEST(Fig1Elimination, TransformedCanPrint1Then0) {
  Program P = parseOrDie(Fig1Transformed);
  std::set<Behaviour> Bs = programBehaviours(P);
  EXPECT_TRUE(hasBehaviour(Bs, {1, 0}));
}

TEST(Fig1Elimination, BothProgramsAreRacy) {
  EXPECT_FALSE(isProgramDrf(parseOrDie(Fig1Original)));
  EXPECT_FALSE(isProgramDrf(parseOrDie(Fig1Transformed)));
}

TEST(Fig1Elimination, TransformedIsSemanticEliminationOfOriginal) {
  Program O = parseOrDie(Fig1Original);
  Program T = parseOrDie(Fig1Transformed);
  std::vector<Value> Domain = defaultDomainFor(O, 3);
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  TransformCheckResult R = checkElimination(TO, TT);
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

TEST(Fig1Elimination, PaperTraceIsEliminationOfPaperWildcardTrace) {
  // t  = [S(1), R[y=1], X(1), R[x=0], R[x=0], X(0)]
  // t' = [S(1), R[y=1], X(1), R[x=0], X(0)]
  SymbolId X = Symbol::intern("x"), Y = Symbol::intern("y");
  Trace T{Action::mkStart(1), Action::mkRead(Y, 1), Action::mkExternal(1),
          Action::mkRead(X, 0), Action::mkRead(X, 0), Action::mkExternal(0)};
  Trace TPrime{Action::mkStart(1), Action::mkRead(Y, 1),
               Action::mkExternal(1), Action::mkRead(X, 0),
               Action::mkExternal(0)};
  EXPECT_TRUE(isEliminationOfTrace(T, TPrime));
  EXPECT_TRUE(isEliminationOfTrace(T, TPrime, /*ProperOnly=*/true));
}

// --- Fig 2: reordering example ------------------------------------------

const char *Fig2Original = R"(
thread {
  r1 := x;
  y := r1;
}
thread {
  r2 := y;
  x := 1;
  print r2;
}
)";

const char *Fig2Transformed = R"(
thread {
  r1 := x;
  y := r1;
}
thread {
  x := 1;
  r2 := y;
  print r2;
}
)";

TEST(Fig2Reordering, OriginalCannotPrint1) {
  std::set<Behaviour> Bs = programBehaviours(parseOrDie(Fig2Original));
  EXPECT_FALSE(hasBehaviour(Bs, {1}));
  EXPECT_TRUE(hasBehaviour(Bs, {0}));
}

TEST(Fig2Reordering, TransformedCanPrint1) {
  std::set<Behaviour> Bs = programBehaviours(parseOrDie(Fig2Transformed));
  EXPECT_TRUE(hasBehaviour(Bs, {1}));
}

TEST(Fig2Reordering, PureReorderingFailsAsInSection4) {
  // §4: T' is *not* a reordering of T — the trace [S(0), W[x=1]] of the
  // transformed thread has no de-permutation into T. (Thread ids differ
  // from §4's presentation; the phenomenon is thread 1's prefix
  // [S(1), W[x=1]].)
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  std::vector<Value> Domain = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  TransformCheckResult R = checkReordering(TO, TT);
  EXPECT_EQ(R.Verdict, CheckVerdict::Fails);
}

TEST(Fig2Reordering, EliminationThenReorderingHolds) {
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  std::vector<Value> Domain = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  TransformCheckResult R = checkEliminationThenReordering(TO, TT);
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

// --- Fig 3: irrelevant read introduction --------------------------------

const char *Fig3A = R"(
thread {
  lock m;
  x := 1;
  r3 := y;
  print r3;
  unlock m;
}
thread {
  lock m;
  y := 1;
  r4 := x;
  print r4;
  unlock m;
}
)";

const char *Fig3B = R"(
thread {
  r1 := y;
  lock m;
  x := 1;
  r3 := y;
  print r3;
  unlock m;
}
thread {
  r2 := x;
  lock m;
  y := 1;
  r4 := x;
  print r4;
  unlock m;
}
)";

const char *Fig3C = R"(
thread {
  r1 := y;
  lock m;
  x := 1;
  print r1;
  unlock m;
}
thread {
  r2 := x;
  lock m;
  y := 1;
  print r2;
  unlock m;
}
)";

TEST(Fig3Introduction, OriginalIsDrfAndCannotPrintTwoZeros) {
  Program A = parseOrDie(Fig3A);
  EXPECT_TRUE(isProgramDrf(A));
  std::set<Behaviour> Bs = programBehaviours(A);
  EXPECT_FALSE(hasBehaviour(Bs, {0, 0}));
}

TEST(Fig3Introduction, ReadIntroductionIsNotAnElimination) {
  Program A = parseOrDie(Fig3A);
  Program B = parseOrDie(Fig3B);
  std::vector<Value> Domain = defaultDomainFor(A, 2);
  Traceset TA = programTraceset(A, Domain);
  Traceset TB = programTraceset(B, Domain);
  EXPECT_EQ(checkElimination(TA, TB).Verdict, CheckVerdict::Fails);
  EXPECT_EQ(checkEliminationThenReordering(TA, TB).Verdict,
            CheckVerdict::Fails);
}

TEST(Fig3Introduction, IntroducedReadsMakeTheProgramRacy) {
  EXPECT_FALSE(isProgramDrf(parseOrDie(Fig3B)));
}

TEST(Fig3Introduction, CrossSyncReadEliminationIsAValidElimination) {
  // (b) -> (c) eliminates r3:=y using the introduced r1:=y across a lock
  // acquire: there is no release-acquire *pair* between the two reads, so
  // Definition 1 case 1 applies — the step itself is sound.
  Program B = parseOrDie(Fig3B);
  Program C = parseOrDie(Fig3C);
  std::vector<Value> Domain = defaultDomainFor(B, 2);
  Traceset TB = programTraceset(B, Domain);
  Traceset TC = programTraceset(C, Domain);
  TransformCheckResult R = checkElimination(TB, TC);
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

TEST(Fig3Introduction, CombinedPassesPrintTwoZerosOnSC) {
  std::set<Behaviour> Bs = programBehaviours(parseOrDie(Fig3C));
  EXPECT_TRUE(hasBehaviour(Bs, {0, 0}));
}

TEST(Fig3Introduction, IntroduceReadHelperBuildsB) {
  Program A = parseOrDie(Fig3A);
  ListPath T0;
  T0.Tid = 0;
  Program Step1 = introduceRead(A, T0, 0, Symbol::intern("r1"),
                                Symbol::intern("y"));
  ListPath T1;
  T1.Tid = 1;
  Program B = introduceRead(Step1, T1, 0, Symbol::intern("r2"),
                            Symbol::intern("x"));
  EXPECT_TRUE(B.equals(parseOrDie(Fig3B)));
}

// --- §1 introduction example ---------------------------------------------

const char *IntroProgram = R"(
thread {
  data := 1;
  flagReq := 1;
  r1 := flagResp;
  if (r1 == 1) {
    r2 := data;
    print r2;
  } else {
    skip;
  }
}
thread {
  r3 := flagReq;
  if (r3 == 1) {
    data := 2;
    flagResp := 1;
  } else {
    skip;
  }
}
)";

const char *IntroProgramVolatile = R"(
volatile flagReq, flagResp;
thread {
  data := 1;
  flagReq := 1;
  r1 := flagResp;
  if (r1 == 1) {
    r2 := data;
    print r2;
  } else {
    skip;
  }
}
thread {
  r3 := flagReq;
  if (r3 == 1) {
    data := 2;
    flagResp := 1;
  } else {
    skip;
  }
}
)";

TEST(IntroExample, CannotPrint1UnderSC) {
  std::set<Behaviour> Bs = programBehaviours(parseOrDie(IntroProgram));
  EXPECT_FALSE(hasBehaviour(Bs, {1}));
  EXPECT_TRUE(hasBehaviour(Bs, {2}));
}

TEST(IntroExample, VolatileVersionIsDrf) {
  EXPECT_TRUE(isProgramDrf(parseOrDie(IntroProgramVolatile)));
  EXPECT_FALSE(isProgramDrf(parseOrDie(IntroProgram)));
}

TEST(IntroExample, UnsafeConstantPropagationPrints1) {
  Program P = parseOrDie(IntroProgramVolatile);
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  ASSERT_FALSE(Sites.empty());
  Program T = applyUnsafeConstProp(P, Sites.front());
  std::set<Behaviour> Bs = programBehaviours(T);
  EXPECT_TRUE(hasBehaviour(Bs, {1}));
  // The original is DRF; the pass violates the DRF guarantee.
  DrfGuaranteeReport R = checkDrfGuarantee(P, T);
  EXPECT_TRUE(R.OriginalDrf);
  EXPECT_FALSE(R.holds());
}

// --- §5 out-of-thin-air example ------------------------------------------

const char *ThinAirProgram = R"(
thread {
  r2 := y;
  x := r2;
  print r2;
}
thread {
  r1 := x;
  y := r1;
}
)";

TEST(ThinAir, ProgramCannotOutput42) {
  Program P = parseOrDie(ThinAirProgram);
  EXPECT_FALSE(P.containsConstant(42));
  EXPECT_FALSE(programCanOutput(P, 42));
  ThinAirReport R = checkThinAir(P, P, 42);
  EXPECT_TRUE(R.holds());
  EXPECT_FALSE(R.OrigHasOrigin);
}

} // namespace
