//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the lexer and parser: every statement form, error
/// reporting, and the register/location naming convention.
///
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Lexer, TokenisesAllForms) {
  std::vector<Token> Ts =
      lex("r1 := x; // comment\n lock m; if (r1 == 0) {} while (r1 != 2)");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Ts)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{
                TokenKind::Ident, TokenKind::Assign, TokenKind::Ident,
                TokenKind::Semi, TokenKind::Ident, TokenKind::Ident,
                TokenKind::Semi, TokenKind::Ident, TokenKind::LParen,
                TokenKind::Ident, TokenKind::EqEq, TokenKind::Number,
                TokenKind::RParen, TokenKind::LBrace, TokenKind::RBrace,
                TokenKind::Ident, TokenKind::LParen, TokenKind::Ident,
                TokenKind::NotEq, TokenKind::Number, TokenKind::RParen,
                TokenKind::EndOfFile}));
}

TEST(Lexer, TracksLineNumbers) {
  std::vector<Token> Ts = lex("a\nb\n\nc");
  EXPECT_EQ(Ts[0].Line, 1u);
  EXPECT_EQ(Ts[1].Line, 2u);
  EXPECT_EQ(Ts[2].Line, 4u);
}

TEST(Lexer, ReportsBadCharacters) {
  std::vector<Token> Ts = lex("a $ b");
  ASSERT_GE(Ts.size(), 2u);
  EXPECT_EQ(Ts[1].Kind, TokenKind::Error);
}

TEST(Parser, RegisterVsLocationConvention) {
  EXPECT_TRUE(isRegisterName("r1"));
  EXPECT_TRUE(isRegisterName("ready")); // Anything starting with 'r'.
  EXPECT_FALSE(isRegisterName("x"));
  EXPECT_FALSE(isRegisterName("flag"));
}

TEST(Parser, ParsesAllStatementForms) {
  ParseResult R = parseProgram(R"(
volatile v;
thread {
  r1 := x;        // load
  x := r1;        // store register
  x := 3;         // store literal
  r1 := 2;        // assign literal
  r2 := r1;       // assign register
  lock m;
  unlock m;
  skip;
  print r1;
  print 0;
  if (r1 == r2) { skip; } else { print 1; }
  while (r1 != 0) { r1 := 0; }
}
)");
  ASSERT_TRUE(R) << R.Error;
  const StmtList &L = R.Prog->thread(0);
  ASSERT_EQ(L.size(), 12u);
  EXPECT_EQ(L[0]->kind(), StmtKind::Load);
  EXPECT_EQ(L[1]->kind(), StmtKind::Store);
  EXPECT_EQ(L[2]->kind(), StmtKind::Store);
  EXPECT_EQ(L[3]->kind(), StmtKind::Assign);
  EXPECT_EQ(L[4]->kind(), StmtKind::Assign);
  EXPECT_EQ(L[5]->kind(), StmtKind::Lock);
  EXPECT_EQ(L[6]->kind(), StmtKind::Unlock);
  EXPECT_EQ(L[7]->kind(), StmtKind::Skip);
  EXPECT_EQ(L[8]->kind(), StmtKind::Print);
  EXPECT_EQ(L[9]->kind(), StmtKind::Print);
  EXPECT_EQ(L[10]->kind(), StmtKind::If);
  EXPECT_EQ(L[11]->kind(), StmtKind::While);
  EXPECT_TRUE(R.Prog->isVolatile(Symbol::intern("v")));
  EXPECT_FALSE(R.Prog->isVolatile(Symbol::intern("x")));
}

TEST(Parser, MultipleThreadsGetSequentialIds) {
  ParseResult R = parseProgram("thread { skip; } thread { skip; } "
                               "thread { skip; }");
  ASSERT_TRUE(R);
  EXPECT_EQ(R.Prog->threadCount(), 3u);
}

TEST(Parser, VolatileListWithCommas) {
  ParseResult R = parseProgram("volatile a, b; thread { skip; }");
  ASSERT_TRUE(R);
  EXPECT_EQ(R.Prog->volatiles().size(), 2u);
}

struct ErrorCase {
  const char *Source;
  const char *Name;
};

class ParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrors, RejectsMalformedInput) {
  ParseResult R = parseProgram(GetParam().Source);
  EXPECT_FALSE(R) << "should have failed: " << GetParam().Source;
  EXPECT_FALSE(R.Error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    All, ParserErrors,
    ::testing::Values(
        ErrorCase{"", "empty"},
        ErrorCase{"thread { r1 := ; }", "missing rhs"},
        ErrorCase{"thread { x := y; }", "memory-to-memory store"},
        ErrorCase{"thread { if (r1 == 0) { skip; } }", "if without else"},
        ErrorCase{"thread { lock ; }", "lock without monitor"},
        ErrorCase{"thread { print x; }", "print of a location"},
        ErrorCase{"thread { skip }", "missing semicolon"},
        ErrorCase{"thread { skip; ", "unterminated block"},
        ErrorCase{"volatile ; thread { skip; }", "empty volatile list"},
        ErrorCase{"thread { while r1 == 0 skip; }", "missing parens"},
        ErrorCase{"garbage", "top-level junk"},
        ErrorCase{"thread { r1 := 99999999999; }", "literal out of range"},
        ErrorCase{"thread { r1 := 2147483648; }", "literal int32 max plus 1"},
        ErrorCase{"thread { x @ 1; }", "stray character"},
        ErrorCase{"thread { sync m { skip; }", "unterminated sync"},
        ErrorCase{"thread { if (r1 == ) skip; else skip; }",
                  "condition missing rhs"},
        ErrorCase{"thread { input x; }", "input into a location"}),
    [](const auto &Info) {
      std::string N = Info.param.Name;
      for (char &C : N)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return N;
    });

TEST(Parser, ErrorsIncludeLineNumbers) {
  ParseResult R = parseProgram("thread {\n  skip;\n  lock ;\n}");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 3"), std::string::npos) << R.Error;
}

TEST(Parser, ErrorsIncludeColumns) {
  // The stray ';' after 'lock' sits at column 8 of line 3.
  ParseResult R = parseProgram("thread {\n  skip;\n  lock ;\n}");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 3, col 8"), std::string::npos) << R.Error;
}

TEST(Lexer, OutOfRangeLiteralIsDiagnosedNotFatal) {
  std::vector<Token> Ts = lex("r1 := 99999999999999999999999999;");
  bool SawError = false;
  for (const Token &T : Ts)
    if (T.Kind == TokenKind::Error) {
      SawError = true;
      EXPECT_NE(T.Text.find("out of range"), std::string::npos) << T.Text;
    }
  EXPECT_TRUE(SawError);
}

TEST(Lexer, MaxValueLiteralStillLexes) {
  std::vector<Token> Ts = lex("2147483647");
  ASSERT_GE(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Number);
  EXPECT_EQ(Ts[0].Num, 2147483647);
}

TEST(Parser, DeepNestingIsRejectedNotStackOverflow) {
  // ~10k nested blocks: without a depth cap this overflows the parser's
  // stack; with it, the input is rejected with a diagnostic.
  std::string Source = "thread { ";
  for (int I = 0; I < 10000; ++I)
    Source += "{ ";
  Source += "skip; ";
  for (int I = 0; I < 10000; ++I)
    Source += "} ";
  Source += "}";
  ParseResult R = parseProgram(Source);
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("nested"), std::string::npos) << R.Error;
}

TEST(Parser, ModerateNestingStillParses) {
  std::string Source = "thread { ";
  for (int I = 0; I < 50; ++I)
    Source += "{ ";
  Source += "skip; ";
  for (int I = 0; I < 50; ++I)
    Source += "} ";
  Source += "}";
  EXPECT_TRUE(parseProgram(Source));
}

TEST(Parser, SyncSugarDesugarsToLockBlockUnlock) {
  Program P = parseOrDie("thread { sync m { x := 1; r1 := x; } }");
  Program Expected = parseOrDie(
      "thread { { lock m; { x := 1; r1 := x; } unlock m; } }");
  EXPECT_TRUE(P.equals(Expected));
}

TEST(Parser, SyncSugarNests) {
  Program P = parseOrDie(
      "thread { sync m { sync m2 { x := 1; } } }");
  Program Expected = parseOrDie(
      "thread { { lock m; { { lock m2; { x := 1; } unlock m2; } } "
      "unlock m; } }");
  EXPECT_TRUE(P.equals(Expected));
}

TEST(Parser, SyncSugarErrors) {
  EXPECT_FALSE(parseProgram("thread { sync { x := 1; } }"));
  EXPECT_FALSE(parseProgram("thread { sync m x := 1; }"));
}

TEST(Parser, NestedBlocksAndControlFlow) {
  ParseResult R = parseProgram(R"(
thread {
  {
    { skip; }
    if (0 == 0) { { x := 1; } } else { skip; }
  }
}
)");
  ASSERT_TRUE(R) << R.Error;
  const StmtList &L = R.Prog->thread(0);
  ASSERT_EQ(L.size(), 1u);
  EXPECT_EQ(L[0]->kind(), StmtKind::Block);
}

} // namespace
