//===----------------------------------------------------------------------===//
///
/// \file
/// Smoke test for the umbrella header: it must be self-contained and give
/// access to the whole public API in one include.
///
//===----------------------------------------------------------------------===//

#include "tracesafe/TraceSafe.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Umbrella, OneIncludeDrivesTheWholePipeline) {
  Program P = parseOrDie(R"(
thread { lock m; x := 1; r1 := x; print r1; unlock m; }
)");
  EXPECT_TRUE(isProgramDrf(P));
  TransformChain Chain = greedyChain(P, RuleSet::all(), 4);
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
  EXPECT_TRUE(Report.allHold()) << Report.summary();
  EXPECT_TRUE(tsoOnlyBehaviours(P).empty());
  EXPECT_TRUE(psoOnlyBehaviours(P).empty());
}

} // namespace
