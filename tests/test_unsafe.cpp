//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the unsafe transformations: read introduction and the
/// §1-style constant propagation, including its sequential-correctness
/// guardrails.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(IntroduceRead, InsertsAtTheRequestedPosition) {
  Program P = parseOrDie("thread { x := 1; print 0; }");
  ListPath Path;
  Path.Tid = 0;
  Program Out = introduceRead(P, Path, 1, Symbol::intern("r9"),
                              Symbol::intern("y"));
  EXPECT_TRUE(Out.equals(parseOrDie("thread { x := 1; r9 := y; print 0; }")));
  // At the end.
  Program Out2 = introduceRead(P, Path, 2, Symbol::intern("r9"),
                               Symbol::intern("y"));
  EXPECT_TRUE(
      Out2.equals(parseOrDie("thread { x := 1; print 0; r9 := y; }")));
}

TEST(IntroduceRead, DoesNotChangeScBehavioursWhenRegisterIsFresh) {
  Program P = parseOrDie(R"(
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)");
  ListPath Path;
  Path.Tid = 0;
  Program Out = introduceRead(P, Path, 0, Symbol::intern("r9"),
                              Symbol::intern("y"));
  EXPECT_EQ(programBehaviours(P), programBehaviours(Out));
}

TEST(ConstProp, FindsStraightLineSites) {
  Program P = parseOrDie("thread { x := 3; skip; r1 := x; }");
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  ASSERT_EQ(Sites.size(), 1u);
  Program Out = applyUnsafeConstProp(P, Sites[0]);
  EXPECT_TRUE(Out.equals(parseOrDie("thread { x := 3; skip; r1 := 3; }")));
}

TEST(ConstProp, StopsAtInterveningStores) {
  Program P = parseOrDie("thread { x := 3; x := 4; r1 := x; }");
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  // Only the second store may propagate.
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].StoreIndex, 1u);
  Program Out = applyUnsafeConstProp(P, Sites[0]);
  EXPECT_TRUE(Out.equals(parseOrDie("thread { x := 3; x := 4; r1 := 4; }")));
}

TEST(ConstProp, DescendsIntoBranches) {
  Program P = parseOrDie(R"(
thread {
  x := 7;
  if (r0 == 0) { r1 := x; } else { r2 := x; }
}
)");
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  EXPECT_EQ(Sites.size(), 2u);
  Program Out = P;
  // Apply one at a time; sites are recomputed against the same original
  // shape (the load replacement does not shift indices).
  for (const ConstPropSite &S : Sites)
    Out = applyUnsafeConstProp(Out, S);
  EXPECT_TRUE(Out.equals(parseOrDie(R"(
thread {
  x := 7;
  if (r0 == 0) { r1 := 7; } else { r2 := 7; }
}
)"))) << printProgram(Out);
}

TEST(ConstProp, BranchLocalStoreStopsLaterLoads) {
  Program P = parseOrDie(R"(
thread {
  x := 7;
  if (r0 == 0) { x := 8; } else { skip; }
  r1 := x;
}
)");
  // After the if, x may be 7 or 8: no propagation to r1.
  EXPECT_TRUE(findUnsafeConstProp(P).empty());
}

TEST(ConstProp, WhileBodiesWithStoresAreOffLimits) {
  Program P = parseOrDie(R"(
thread {
  x := 7;
  while (r0 == 0) { r1 := x; x := 8; }
}
)");
  EXPECT_TRUE(findUnsafeConstProp(P).empty());
  // Store-free while bodies are fine.
  Program Q = parseOrDie(R"(
thread {
  x := 7;
  while (r0 == 0) { r1 := x; r0 := 1; }
}
)");
  EXPECT_EQ(findUnsafeConstProp(Q).size(), 1u);
}

TEST(ConstProp, OnlyLiteralStoresPropagate) {
  Program P = parseOrDie("thread { x := r2; r1 := x; }");
  EXPECT_TRUE(findUnsafeConstProp(P).empty());
}

TEST(ConstProp, IsSequentiallyCorrectOnSingleThreadPrograms) {
  // The pass must preserve behaviours of sequential programs — it is only
  // *concurrently* unsound.
  const char *Sources[] = {
      "thread { x := 3; r1 := x; print r1; }",
      "thread { x := 3; if (r0 == 0) { r1 := x; print r1; } "
      "else { print 9; } }",
      "thread { x := 1; x := 2; r1 := x; print r1; }",
  };
  for (const char *Src : Sources) {
    Program P = parseOrDie(Src);
    Program Out = P;
    // Apply sites to a fixpoint (each application can expose nothing new
    // here, one round suffices).
    for (const ConstPropSite &S : findUnsafeConstProp(P))
      Out = applyUnsafeConstProp(Out, S);
    EXPECT_EQ(programBehaviours(P), programBehaviours(Out)) << Src;
  }
}

} // namespace
