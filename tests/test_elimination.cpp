//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the semantic elimination relation (§4): trace-level
/// subsequence checking, the wildcard-witness search, and the paper's §4
/// traceset example.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "semantics/Elimination.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId M() { return Symbol::intern("m"); }

TEST(EliminationTrace, PaperExampleRestriction) {
  // §4: from [S(0), W[x=1], R[y=*], R[x=1], X(1), L[m], W[x=2], W[x=1],
  // U[m]] one elimination is [S(0), W[x=1], X(1), L[m], W[x=1], U[m]].
  Trace T{Action::mkStart(0),       Action::mkWrite(X(), 1),
          Action::mkWildcardRead(Y()), Action::mkRead(X(), 1),
          Action::mkExternal(1),    Action::mkLock(M()),
          Action::mkWrite(X(), 2),  Action::mkWrite(X(), 1),
          Action::mkUnlock(M())};
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 1),
               Action::mkExternal(1), Action::mkLock(M()),
               Action::mkWrite(X(), 1), Action::mkUnlock(M())};
  EXPECT_TRUE(isEliminationOfTrace(T, TPrime));
}

TEST(EliminationTrace, IdentityAndEmpty) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1)};
  EXPECT_TRUE(isEliminationOfTrace(T, T));
  EXPECT_TRUE(isEliminationOfTrace(Trace(), Trace()));
  // Dropping everything requires everything to be eliminable; a start
  // action never is.
  EXPECT_FALSE(isEliminationOfTrace(T, Trace()));
}

TEST(EliminationTrace, CannotDropNonEliminable) {
  // Dropping a lock is never allowed.
  Trace T{Action::mkStart(0), Action::mkLock(M()), Action::mkUnlock(M())};
  Trace TPrime{Action::mkStart(0), Action::mkUnlock(M())};
  EXPECT_FALSE(isEliminationOfTrace(T, TPrime));
}

TEST(EliminationTrace, KeptActionsMustMatchExactly) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1)};
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 2)};
  EXPECT_FALSE(isEliminationOfTrace(T, TPrime));
  // Order must be preserved (t' = t|S keeps relative order).
  Trace T2{Action::mkStart(0), Action::mkWrite(X(), 1),
           Action::mkWrite(Y(), 2)};
  Trace Swapped{Action::mkStart(0), Action::mkWrite(Y(), 2),
                Action::mkWrite(X(), 1)};
  EXPECT_FALSE(isEliminationOfTrace(T2, Swapped));
}

TEST(EliminationTrace, ProperOnlyRejectsLastActionDrops) {
  // Dropping a trailing write is a (non-proper) last-write elimination.
  Trace T{Action::mkStart(0), Action::mkExternal(1), Action::mkWrite(X(), 1)};
  Trace TPrime{Action::mkStart(0), Action::mkExternal(1)};
  EXPECT_TRUE(isEliminationOfTrace(T, TPrime));
  EXPECT_FALSE(isEliminationOfTrace(T, TPrime, /*ProperOnly=*/true));
}

TEST(EliminationWitness, FindsWildcardWitnessWithDroppedIndices) {
  // Orig: r1 := y; x := 1   — the read is irrelevant.
  Program O = parseOrDie("thread { r1 := y; x := 1; }");
  Traceset TO = programTraceset(O, {0, 1});
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 1)};
  std::vector<size_t> Dropped;
  bool Truncated = false;
  std::optional<Trace> W = findEliminationWitness(TO, TPrime, {}, &Truncated,
                                                  false, &Dropped);
  ASSERT_TRUE(W.has_value());
  EXPECT_FALSE(Truncated);
  ASSERT_EQ(Dropped.size(), 1u);
  EXPECT_TRUE((*W)[Dropped[0]].isWildcard());
  EXPECT_TRUE(TO.belongsTo(*W));
  EXPECT_TRUE(isEliminationOfTrace(*W, TPrime));
}

TEST(EliminationWitness, NoWitnessForIntroducedActions) {
  Program O = parseOrDie("thread { x := 1; }");
  Traceset TO = programTraceset(O, {0, 1});
  // A write the program never performs.
  Trace TPrime{Action::mkStart(0), Action::mkWrite(Y(), 1)};
  EXPECT_FALSE(findEliminationWitness(TO, TPrime).has_value());
}

TEST(EliminationTraceset, PaperSection4TracesetExample) {
  // §4: the traceset of "x:=1; print 1; lock m; x:=1; unlock m;" is an
  // elimination of the traceset of
  // "x:=1; r1:=y; r2:=x; print r2; if (r2!=0) {lock m; x:=2; x:=r2;
  //  unlock m;}".
  Program O = parseOrDie(R"(
thread {
  x := 1;
  r1 := y;
  r2 := x;
  print r2;
  if (r2 != 0) { lock m; x := 2; x := r2; unlock m; } else { skip; }
}
)");
  Program T = parseOrDie(R"(
thread {
  x := 1;
  print 1;
  lock m;
  x := 1;
  unlock m;
}
)");
  std::vector<Value> Domain = defaultDomainFor(O, 3);
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  TransformCheckResult R = checkElimination(TO, TT);
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

TEST(EliminationTraceset, IdentityIsAnElimination) {
  Program P = parseOrDie("thread { r1 := x; y := r1; print r1; }");
  Traceset T = programTraceset(P, {0, 1});
  EXPECT_EQ(checkElimination(T, T).Verdict, CheckVerdict::Holds);
}

TEST(EliminationTraceset, WriteIntroductionFails) {
  Program O = parseOrDie("thread { r1 := x; }");
  Program T = parseOrDie("thread { r1 := x; y := 1; }");
  Traceset TO = programTraceset(O, {0, 1});
  Traceset TT = programTraceset(T, {0, 1});
  TransformCheckResult R = checkElimination(TO, TT);
  EXPECT_EQ(R.Verdict, CheckVerdict::Fails);
}

TEST(EliminationTraceset, ValueChangeFails) {
  Program O = parseOrDie("thread { x := 1; }");
  Program T = parseOrDie("thread { x := 2; }");
  Traceset TO = programTraceset(O, {0, 1, 2});
  Traceset TT = programTraceset(T, {0, 1, 2});
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Fails);
}

TEST(EliminationTraceset, EliminationAcrossLoneAcquireHolds) {
  // The Fig 3 (b)->(c) shape in isolation: reuse a pre-lock read after the
  // acquire.
  Program O = parseOrDie(
      "thread { r1 := y; lock m; r2 := y; print r2; unlock m; }");
  Program T = parseOrDie(
      "thread { r1 := y; lock m; r2 := r1; print r2; unlock m; }");
  std::vector<Value> Domain = {0, 1};
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Holds);
}

TEST(EliminationTraceset, EliminationAcrossReleaseAcquirePairFails) {
  // With a full unlock/lock pair between the reads, Definition 1 forbids
  // the reuse — and rightly: another thread may write y in between.
  Program O = parseOrDie(
      "thread { lock m; r1 := y; unlock m; lock m; r2 := y; print r2; "
      "unlock m; }");
  Program T = parseOrDie(
      "thread { lock m; r1 := y; unlock m; lock m; r2 := r1; print r2; "
      "unlock m; }");
  std::vector<Value> Domain = {0, 1};
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  EXPECT_EQ(checkElimination(TO, TT).Verdict, CheckVerdict::Fails);
}

TEST(EliminationTraceset, TruncationYieldsUnknown) {
  Program O = parseOrDie("thread { r1 := y; x := 1; }");
  Program T = parseOrDie("thread { x := 1; }");
  Traceset TO = programTraceset(O, {0, 1});
  Traceset TT = programTraceset(T, {0, 1});
  EliminationSearchLimits Limits;
  Limits.MaxNodesPerTrace = 1; // Absurdly small.
  TransformCheckResult R = checkElimination(TO, TT, Limits);
  EXPECT_EQ(R.Verdict, CheckVerdict::Unknown);
}

TEST(EliminationWitness, MaxExtraBoundIsRespectedAndRaisable) {
  // Eliminating seven irrelevant reads needs seven insertions: the default
  // bound (6) must answer Unknown, a raised bound must find the witness.
  std::string Src = "thread { ";
  for (int I = 0; I < 7; ++I)
    Src += "r1 := y; ";
  Src += "x := 1; }";
  Program O = parseOrDie(Src);
  Program T = parseOrDie("thread { x := 1; }");
  Traceset TO = programTraceset(O, {0, 1});
  Traceset TT = programTraceset(T, {0, 1});
  EliminationSearchLimits Tight; // MaxExtra = 6.
  TransformCheckResult R1 = checkElimination(TO, TT, Tight);
  EXPECT_EQ(R1.Verdict, CheckVerdict::Unknown);
  EliminationSearchLimits Loose;
  Loose.MaxExtra = 8;
  TransformCheckResult R2 = checkElimination(TO, TT, Loose);
  EXPECT_EQ(R2.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R2.Counterexample.str();
}

TEST(EliminationWitness, InstanceCapReportsUnknown) {
  // Four wildcard reads over a domain of 3 values exceed a cap of 16
  // instances.
  Program O = parseOrDie(
      "thread { r1 := y; r1 := y; r1 := y; r1 := y; x := 1; }");
  Program T = parseOrDie("thread { x := 1; }");
  std::vector<Value> D = {0, 1, 2};
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  EliminationSearchLimits Tight;
  Tight.MaxInstances = 16;
  EXPECT_EQ(checkElimination(TO, TT, Tight).Verdict, CheckVerdict::Unknown);
  EliminationSearchLimits Loose;
  Loose.MaxInstances = 256;
  EXPECT_EQ(checkElimination(TO, TT, Loose).Verdict, CheckVerdict::Holds);
}

TEST(EliminationTraceset, VerdictNames) {
  EXPECT_EQ(checkVerdictName(CheckVerdict::Holds), "holds");
  EXPECT_EQ(checkVerdictName(CheckVerdict::Fails), "fails");
  EXPECT_EQ(checkVerdictName(CheckVerdict::Unknown), "unknown");
}

} // namespace
