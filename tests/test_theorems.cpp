//===----------------------------------------------------------------------===//
///
/// \file
/// The theorem harness property tests: Theorems 1-5 and Lemmas 4/5 checked
/// end-to-end on random (program, transformation-chain) instances. Any
/// failure here would be a counterexample to the paper.
///
//===----------------------------------------------------------------------===//

#include "lang/Printer.h"
#include "lang/Parser.h"
#include "verify/ProgramGen.h"
#include "verify/Theorems.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

struct TheoremCase {
  uint64_t Seed;
  GenDiscipline Discipline;
  bool Extensions;
};

class TheoremSweep : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(TheoremSweep, GuaranteesHoldOnRandomChains) {
  const TheoremCase &C = GetParam();
  GenOptions Options;
  Options.Discipline = C.Discipline;
  Options.MaxStmtsPerThread = 4;
  Options.Locations = 2;
  Options.Registers = 3;
  Rng R(C.Seed);
  Program P = generateProgram(R, Options);

  RuleSet Rules = C.Extensions ? RuleSet::withExtensions() : RuleSet::all();
  TransformChain Chain = randomChain(P, Rules, /*MaxSteps=*/3, R);

  TheoremCheckOptions TOpts;
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain, TOpts);
  EXPECT_TRUE(Report.allHold())
      << Report.summary() << "\noriginal:\n" << printProgram(P)
      << "transformed:\n" << printProgram(Chain.Result);
}

std::vector<TheoremCase> sweepCases() {
  std::vector<TheoremCase> Out;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Out.push_back(TheoremCase{Seed, GenDiscipline::LockDiscipline, false});
    Out.push_back(TheoremCase{Seed, GenDiscipline::VolatileLocations, false});
    Out.push_back(TheoremCase{Seed, GenDiscipline::Mixed, false});
    Out.push_back(TheoremCase{Seed, GenDiscipline::Racy, true});
  }
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TheoremSweep,
                         ::testing::ValuesIn(sweepCases()),
                         [](const auto &Info) {
                           const TheoremCase &C = Info.param;
                           std::string D =
                               C.Discipline == GenDiscipline::Racy ? "racy"
                               : C.Discipline == GenDiscipline::LockDiscipline
                                   ? "locked"
                               : C.Discipline == GenDiscipline::Mixed
                                   ? "mixed"
                                   : "volatile";
                           return D + "_seed" + std::to_string(C.Seed);
                         });

TEST(TheoremHarness, DetectsABrokenTransformation) {
  // A deliberately wrong "optimisation": change a printed constant. The
  // harness must flag the DRF-guarantee violation.
  Program O = parseOrDie("thread { print 1; }");
  TransformChain Fake;
  Fake.Result = parseOrDie("thread { print 2; }");
  TheoremCheckOptions TOpts;
  TOpts.VerifySemanticSteps = false; // No rule steps to verify.
  TheoremCaseReport Report = checkTheoremsOnChain(O, Fake, TOpts);
  EXPECT_FALSE(Report.allHold());
  EXPECT_FALSE(Report.Drf.holds());
}

TEST(TheoremHarness, EmptyChainAlwaysHolds) {
  Program P = parseOrDie(
      "thread { lock m; x := 1; r1 := x; print r1; unlock m; }");
  TransformChain Chain;
  Chain.Result = P;
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
  EXPECT_TRUE(Report.allHold()) << Report.summary();
}

TEST(TheoremHarness, VerifiesEachStepSemantically) {
  Program P = parseOrDie(
      "thread { lock m; data := 1; r1 := data; r2 := data; print r2; "
      "unlock m; }");
  TransformChain Chain = greedyChain(P, RuleSet::all(), 3);
  ASSERT_FALSE(Chain.Steps.empty());
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
  EXPECT_EQ(Report.Steps.size(), Chain.Steps.size());
  for (const StepVerification &S : Report.Steps)
    EXPECT_EQ(S.Semantic, CheckVerdict::Holds) << S.Site.str();
  EXPECT_TRUE(Report.allHold()) << Report.summary();
}

TEST(TheoremHarness, SummaryMentionsEverything) {
  Program P = parseOrDie("thread { r1 := x; r2 := x; print r2; }");
  TransformChain Chain = greedyChain(P, RuleSet::eliminationsOnly(), 1);
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
  std::string S = Report.summary();
  EXPECT_NE(S.find("DRF guarantee"), std::string::npos);
  EXPECT_NE(S.find("thin-air"), std::string::npos);
}

TEST(TheoremHarness, RuleClassification) {
  EXPECT_TRUE(isEliminationRule(RuleKind::ERaR));
  EXPECT_TRUE(isEliminationRule(RuleKind::EIr));
  EXPECT_FALSE(isEliminationRule(RuleKind::RRR));
  EXPECT_FALSE(isEliminationRule(RuleKind::RWX));
}

} // namespace
