//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for transformation chains (greedy and seeded-random
/// composition of rule applications).
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Pipeline, GreedyReachesAFixpointOnEliminations) {
  Program P = parseOrDie(
      "thread { lock m; counter := 1; r1 := counter; r2 := counter; "
      "print r2; unlock m; }");
  TransformChain Chain =
      greedyChain(P, RuleSet::eliminationsOnly(), /*MaxSteps=*/16);
  EXPECT_FALSE(Chain.Steps.empty());
  // Elimination rules strictly shrink or substitute; a fixpoint exists and
  // no further elimination applies.
  EXPECT_TRUE(findRewriteSites(Chain.Result, RuleSet::eliminationsOnly())
                  .empty())
      << printProgram(Chain.Result);
}

TEST(Pipeline, GreedyIsDeterministic) {
  Program P = parseOrDie(
      "thread { r1 := x; r2 := y; x := r1; y := r2; print r1; }");
  TransformChain A = greedyChain(P, RuleSet::all(), 8);
  TransformChain B = greedyChain(P, RuleSet::all(), 8);
  EXPECT_TRUE(A.Result.equals(B.Result));
  EXPECT_EQ(A.Steps.size(), B.Steps.size());
}

TEST(Pipeline, RandomChainsAreSeedDeterministic) {
  Program P = parseOrDie(
      "thread { r1 := x; r2 := y; x := r1; y := r2; print r1; }");
  Rng R1(99), R2(99);
  TransformChain A = randomChain(P, RuleSet::all(), 6, R1);
  TransformChain B = randomChain(P, RuleSet::all(), 6, R2);
  EXPECT_TRUE(A.Result.equals(B.Result));
}

TEST(Pipeline, ChainsStopWhenNoRuleApplies) {
  Program P = parseOrDie("thread { skip; }");
  Rng R(1);
  TransformChain Chain = randomChain(P, RuleSet::all(), 10, R);
  EXPECT_TRUE(Chain.Steps.empty());
  EXPECT_TRUE(Chain.Result.equals(P));
}

TEST(Pipeline, MaxStepsBoundsPingPongReorderings) {
  // R-RR can swap two loads back and forth forever; the bound must hold.
  Program P = parseOrDie("thread { r1 := x; r2 := y; }");
  Rng R(3);
  TransformChain Chain = randomChain(P, RuleSet::reorderingsOnly(), 7, R);
  EXPECT_LE(Chain.Steps.size(), 7u);
}

TEST(Pipeline, StepsReplayToTheResult) {
  Program P = parseOrDie(
      "thread { r1 := x; r2 := y; x := r1; y := r2; print r1; }");
  Rng R(17);
  TransformChain Chain = randomChain(P, RuleSet::all(), 5, R);
  Program Replayed = P;
  for (const RewriteSite &S : Chain.Steps)
    Replayed = applyRewrite(Replayed, S);
  EXPECT_TRUE(Replayed.equals(Chain.Result));
}

} // namespace
