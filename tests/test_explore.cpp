//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for traceset generation ([[P]], §6): exactness on loop-free
/// programs, prefix closure, the value-domain branching of reads, and
/// bounded exploration of loops.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Explore, StraightLineThreadIsExact) {
  Program P = parseOrDie("thread { x := 1; print 2; }");
  Traceset T = programTraceset(P, {0, 1});
  // {[], [S], [S,W], [S,W,X]}.
  EXPECT_EQ(T.size(), 4u);
  EXPECT_TRUE(T.contains(Trace{Action::mkStart(0),
                               Action::mkWrite(Symbol::intern("x"), 1),
                               Action::mkExternal(2)}));
  EXPECT_TRUE(T.validate());
}

TEST(Explore, ReadsBranchOverTheDomain) {
  Program P = parseOrDie("thread { r1 := x; print r1; }");
  Traceset T = programTraceset(P, {0, 1, 2});
  // Maximal traces: one per read value.
  EXPECT_EQ(T.maximalTraces().size(), 3u);
  for (Value V : {0, 1, 2})
    EXPECT_TRUE(T.contains(Trace{Action::mkStart(0),
                                 Action::mkRead(Symbol::intern("x"), V),
                                 Action::mkExternal(V)}));
}

TEST(Explore, MatchesPaperFig2Traceset) {
  // §3: the traceset of Fig 2's original program is the prefix closure of
  // {[S(0),R[x=v],W[y=v]]} ∪ {[S(1),R[y=v],W[x=1],X(v)]}.
  Program P = parseOrDie(R"(
thread { r1 := x; y := r1; }
thread { r2 := y; x := 1; print r2; }
)");
  Traceset T = programTraceset(P, {0, 1});
  Traceset Expected({0, 1});
  SymbolId X = Symbol::intern("x"), Y = Symbol::intern("y");
  for (Value V : {0, 1}) {
    Expected.insert(Trace{Action::mkStart(0), Action::mkRead(X, V),
                          Action::mkWrite(Y, V)});
    Expected.insert(Trace{Action::mkStart(1), Action::mkRead(Y, V),
                          Action::mkWrite(X, 1), Action::mkExternal(V)});
  }
  EXPECT_EQ(T, Expected);
}

TEST(Explore, ConditionalsFollowRegisterValues) {
  Program P = parseOrDie(
      "thread { r1 := x; if (r1 == 1) { print 1; } else { print 0; } }");
  Traceset T = programTraceset(P, {0, 1, 2});
  SymbolId X = Symbol::intern("x");
  EXPECT_TRUE(T.contains(Trace{Action::mkStart(0), Action::mkRead(X, 1),
                               Action::mkExternal(1)}));
  EXPECT_TRUE(T.contains(Trace{Action::mkStart(0), Action::mkRead(X, 0),
                               Action::mkExternal(0)}));
  EXPECT_TRUE(T.contains(Trace{Action::mkStart(0), Action::mkRead(X, 2),
                               Action::mkExternal(0)}));
  EXPECT_FALSE(T.contains(Trace{Action::mkStart(0), Action::mkRead(X, 0),
                                Action::mkExternal(1)}));
}

TEST(Explore, VolatileMarksCarryIntoActions) {
  Program P = parseOrDie("volatile v; thread { v := 1; r1 := v; }");
  Traceset T = programTraceset(P, {0, 1});
  for (const Action &A : T.successors(Trace{Action::mkStart(0)}))
    EXPECT_TRUE(A.isVolatileAccess());
}

TEST(Explore, UnlockWithoutLockIsSilent) {
  // E-ULK: the trace has no unlock action, keeping the set well locked.
  Program P = parseOrDie("thread { unlock m; x := 1; }");
  Traceset T = programTraceset(P, {0});
  EXPECT_EQ(T.maxTraceLength(), 2u); // S(0), W[x=1].
  EXPECT_TRUE(T.validate());
}

TEST(Explore, LoopsAreTruncatedAtTheActionBound) {
  Program P = parseOrDie("thread { while (0 == 0) { x := 1; } }");
  ExploreLimits Limits;
  Limits.MaxActions = 5;
  ExploreStats Stats;
  Traceset T = programTraceset(P, {0}, Limits, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(T.maxTraceLength(), 6u); // Start + 5 writes.
  EXPECT_TRUE(T.validate());         // Still prefix-closed.
}

TEST(Explore, SilentLoopIsTruncatedWithoutActions) {
  Program P = parseOrDie("thread { while (0 == 0) { skip; } }");
  ExploreStats Stats;
  Traceset T = programTraceset(P, {0}, {}, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(T.maxTraceLength(), 1u); // Just the start action.
}

TEST(Explore, MultiThreadTracesetsShareOnePool) {
  Program P = parseOrDie("thread { x := 1; } thread { x := 2; }");
  Traceset T = programTraceset(P, {0});
  EXPECT_EQ(T.entryPoints(), (std::vector<ThreadId>{0, 1}));
}

TEST(Explore, DefaultDomainCollectsConstants) {
  Program P = parseOrDie("thread { x := 3; r1 := 7; print 1; }");
  std::vector<Value> D = defaultDomainFor(P);
  // {0 (default), 1, 3, 7}.
  EXPECT_EQ(D, (std::vector<Value>{0, 1, 3, 7}));
}

TEST(Explore, DefaultDomainPadsToMinSize) {
  Program P = parseOrDie("thread { skip; }");
  std::vector<Value> D = defaultDomainFor(P, 3);
  EXPECT_EQ(D.size(), 3u);
  EXPECT_EQ(D[0], 0);
}

TEST(Explore, RegisterCopiesProduceNoActions) {
  // §2.1: "r:=x; if (r==0) y:=1 else y:=1" and "r:=x; y:=1" have the same
  // traceset.
  Program A = parseOrDie(
      "thread { r1 := x; if (r1 == 0) { y := 1; } else { y := 1; } }");
  Program B = parseOrDie("thread { r1 := x; y := 1; }");
  EXPECT_EQ(programTraceset(A, {0, 1}), programTraceset(B, {0, 1}));
}

} // namespace
