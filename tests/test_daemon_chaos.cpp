//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos smoke test for tracesafed crash recovery, registered in ctest as
/// `daemon_chaos_smoke`. A real daemon process is spawned (fork + exec of
/// the installed binary — never fork-and-run, the test process has
/// threads), a client streams a seeded 16-query batch at it, and the
/// daemon is SIGKILLed once the journal shows partial progress. A second
/// daemon started with --resume on the same socket and journal must serve
/// the rest, and the merged transcript must be byte-identical to a
/// single-process reference run of the same batch. Finally the survivor
/// is SIGTERMed and must exit 130 per the unified signal contract.
///
/// Determinism relies on a wall-clock-free quota (visit/memory caps only)
/// and on the daemon running each query's engines sequentially; cache
/// warmth invariance keeps Visited identical no matter which daemon — or
/// the reference process — computes a verdict.
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/Server.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "support/Rng.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

/// Must match the --quota-* flags passed to the daemon below.
const BudgetSpec ChaosCeiling{/*DeadlineMs=*/0, /*MaxVisited=*/50'000,
                              /*MaxMemoryBytes=*/128ULL << 20};

pid_t spawnDaemon(const std::string &Socket, const std::string &Journal,
                  bool Resume) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  // Child: exec only — running C++ in a forked child of a threaded
  // process is undefined (another thread may hold the malloc lock).
  if (Resume)
    ::execl(TRACESAFE_TRACESAFED, "tracesafed", "--socket", Socket.c_str(),
            "--journal", Journal.c_str(), "--resume", "--quota-deadline-ms",
            "0", "--quota-visited", "50000", "--quota-mem-mb", "128",
            (char *)nullptr);
  else
    ::execl(TRACESAFE_TRACESAFED, "tracesafed", "--socket", Socket.c_str(),
            "--journal", Journal.c_str(), "--quota-deadline-ms", "0",
            "--quota-visited", "50000", "--quota-mem-mb", "128",
            (char *)nullptr);
  _exit(127);
}

size_t countVerdictLines(const std::string &Path) {
  std::ifstream In(Path);
  size_t N = 0;
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("V\t", 0) == 0)
      ++N;
  return N;
}

/// A seeded batch rotating all four query kinds over generated programs,
/// with optimiser-produced transforms for the two-program kinds.
std::vector<QueryRequest> chaosBatch() {
  // Big enough that each query does real exploration work (tens of
  // milliseconds under the 50k-visit ceiling), so the SIGKILL below has a
  // wide mid-batch window to land in.
  Rng R(0xC4A05);
  GenOptions GO;
  GO.Threads = 3;
  GO.MinStmtsPerThread = 4;
  GO.MaxStmtsPerThread = 8;
  GO.Locations = 3;
  std::vector<QueryRequest> Qs;
  for (unsigned I = 0; I < 16; ++I) {
    Program P = generateProgram(R, GO);
    QueryRequest Q;
    Q.Program = printProgram(P);
    switch (I % 4) {
    case 0:
      Q.Kind = QueryKind::ProgramDrf;
      break;
    case 1:
      Q.Kind = QueryKind::Behaviours;
      break;
    case 2:
      Q.Kind = QueryKind::DrfGuarantee;
      Q.Transformed =
          printProgram(greedyChain(P, RuleSet::all(), 4).Result);
      break;
    default:
      Q.Kind = QueryKind::ThinAir;
      Q.Transformed =
          printProgram(greedyChain(P, RuleSet::eliminationsOnly(), 4).Result);
      break;
    }
    Qs.push_back(std::move(Q));
  }
  return Qs;
}

TEST(DaemonChaos, Kill9MidBatchResumesToIdenticalTranscript) {
  namespace fs = std::filesystem;
  std::string Dir = (fs::temp_directory_path() /
                     ("tracesafed_chaos_" + std::to_string(::getpid())))
                        .string();
  fs::create_directories(Dir);
  std::string Socket = Dir + "/d.sock";
  std::string Journal = Dir + "/d.journal";

  std::vector<QueryRequest> Qs = chaosBatch();

  // The reference transcript: the same shared evaluator the daemon
  // workers run, in this process, under the same ceiling.
  std::vector<std::string> Want;
  for (const QueryRequest &Q : Qs)
    Want.push_back(evaluateQuery(Q, ChaosCeiling).str());

  pid_t First = spawnDaemon(Socket, Journal, /*Resume=*/false);
  ASSERT_GT(First, 0);

  // The client rides through the crash: generous attempts and a short
  // backoff cap bridge the kill/restart window.
  ClientOptions CO;
  CO.SocketPath = Socket;
  CO.Name = "chaos-client";
  CO.FirstRequestId = 1;
  CO.MaxAttempts = 64;
  CO.BackoffCapMs = 100;
  std::vector<QueryResponse> Got;
  std::thread Client([&] {
    DaemonClient C(CO);
    Got = C.callBatch(Qs);
  });

  // Kill -9 once the journal proves partial progress (>=2 verdicts
  // durable, the rest orphaned admissions).
  bool SawProgress = false;
  for (int I = 0; I < 20000; ++I) {
    if (countVerdictLines(Journal) >= 2) {
      SawProgress = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(SawProgress) << "daemon never journalled two verdicts";
  ASSERT_EQ(::kill(First, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(First, &Status, 0), First);
  ASSERT_TRUE(WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL);

  size_t Durable = countVerdictLines(Journal);
  pid_t Second = spawnDaemon(Socket, Journal, /*Resume=*/true);
  ASSERT_GT(Second, 0);

  Client.join();

  ASSERT_EQ(Got.size(), Qs.size());
  for (size_t I = 0; I < Qs.size(); ++I) {
    EXPECT_EQ(Got[I].Status, ResponseStatus::Ok) << "query " << I;
    EXPECT_EQ(Got[I].str(), Want[I])
        << "query " << I << " diverged across the crash";
  }
  EXPECT_GE(countVerdictLines(Journal), Qs.size())
      << "the merged journal must cover the whole batch";
  EXPECT_LT(Durable, Qs.size())
      << "the kill was supposed to land mid-batch (flaky-machine note: "
         "daemon finished everything before the signal)";

  // The unified signal contract: SIGTERM -> flush, cancel, exit 130.
  ASSERT_EQ(::kill(Second, SIGTERM), 0);
  ASSERT_EQ(::waitpid(Second, &Status, 0), Second);
  ASSERT_TRUE(WIFEXITED(Status)) << "daemon must exit, not be killed";
  EXPECT_EQ(WEXITSTATUS(Status), 130);

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

} // namespace
