//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the §5 unordering construction, including the full proof
/// pipeline of the reordering safety theorem: an execution of the
/// transformed program is unordered into the intermediate set T-bar, then
/// uneliminated into the original traceset, landing on an execution with
/// the same behaviour.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "semantics/Unelimination.h"
#include "semantics/Unordering.h"
#include "trace/Enumerate.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// Membership oracle for the elimination closure of \p T (memoised).
std::function<bool(const Trace &)> closureOracle(const Traceset &T) {
  auto Memo = std::make_shared<std::map<Trace, bool>>();
  return [&T, Memo](const Trace &Tr) {
    auto It = Memo->find(Tr);
    if (It != Memo->end())
      return It->second;
    bool In = findEliminationWitness(T, Tr).has_value();
    Memo->emplace(Tr, In);
    return In;
  };
}

TEST(Unordering, RoachMotelSingleThread) {
  // O: x := 1; lock m; print 0; unlock m;   T': lock m; x := 1; ...
  Program O = parseOrDie("thread { x := 1; lock m; print 0; unlock m; }");
  Program T = parseOrDie("thread { lock m; x := 1; print 0; unlock m; }");
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);

  size_t Executions = 0;
  forEachExecution(TT, [&](const Interleaving &IPrime) {
    UnorderingResult R = findUnordering(IPrime, closureOracle(TO));
    EXPECT_EQ(R.Verdict, CheckVerdict::Holds) << IPrime.str();
    if (R.Verdict == CheckVerdict::Holds) {
      EXPECT_TRUE(isUnorderingFunction(IPrime, R.F, closureOracle(TO)));
      Interleaving Unordered = applyUnordering(IPrime, R.F);
      // Same multiset of events, per-thread traces in the closure.
      EXPECT_EQ(Unordered.size(), IPrime.size());
      EXPECT_EQ(Unordered.behaviour(), IPrime.behaviour());
    }
    ++Executions;
    return true;
  });
  EXPECT_GT(Executions, 0u);
}

TEST(Unordering, FullProofPipelineRestoresAnOriginalExecution) {
  // Two-thread DRF program; thread 0 is transformed by R-UW (the unlock
  // moves after the write).
  Program O = parseOrDie(R"(
thread { lock m; print 1; unlock m; x := 1; }
thread { lock m; print 2; unlock m; }
)");
  Program T = parseOrDie(R"(
thread { lock m; print 1; x := 1; unlock m; }
thread { lock m; print 2; unlock m; }
)");
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  ASSERT_TRUE(isDataRaceFree(TO));
  auto Oracle = closureOracle(TO);

  size_t Checked = 0;
  forEachMaximalExecution(TT, [&](const Interleaving &IPrime) {
    // Step 1: unorder into T-bar.
    UnorderingResult R = findUnordering(IPrime, Oracle);
    EXPECT_EQ(R.Verdict, CheckVerdict::Holds) << IPrime.str();
    if (R.Verdict != CheckVerdict::Holds)
      return true;
    Interleaving Unordered = applyUnordering(IPrime, R.F);
    // Step 2: uneliminate from T-bar into the original traceset.
    UneliminationResult U = findUnelimination(TO, Unordered);
    EXPECT_EQ(U.Verdict, CheckVerdict::Holds) << Unordered.str();
    if (U.Verdict != CheckVerdict::Holds)
      return true;
    // Step 3: the instance is an execution of the original with the same
    // behaviour (up to trailing introduced externals).
    Interleaving Inst = U.I.instance();
    EXPECT_TRUE(Inst.isExecutionOf(TO))
        << IPrime.str() << " -> " << Inst.str();
    Behaviour B = Inst.behaviour(), BP = IPrime.behaviour();
    EXPECT_LE(BP.size(), B.size());
    if (BP.size() <= B.size()) {
      EXPECT_TRUE(std::equal(BP.begin(), BP.end(), B.begin()));
    }
    ++Checked;
    return true;
  });
  EXPECT_GT(Checked, 0u);
}

TEST(Unordering, ConditionsAreEnforced) {
  // Build a tiny interleaving and check the validator's conditions.
  SymbolId X = Symbol::intern("x"), M = Symbol::intern("m");
  Interleaving IPrime({{0, Action::mkStart(0)},
                       {0, Action::mkLock(M)},
                       {0, Action::mkWrite(X, 1)},
                       {0, Action::mkUnlock(M)}});
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X, 1),
                 Action::mkLock(M), Action::mkUnlock(M)});
  T.insert(Trace{Action::mkStart(0), Action::mkLock(M), Action::mkWrite(X, 1),
                 Action::mkUnlock(M)});
  auto Contains = [&T](const Trace &Tr) { return T.contains(Tr); };
  // Identity is an unordering (the trace itself is in T).
  std::vector<size_t> Id = {0, 1, 2, 3};
  EXPECT_TRUE(isUnorderingFunction(IPrime, Id, Contains));
  // Swapping W with the *unlock* would move the write out of the lock:
  // reorderable(U, W) holds, so condition (i) allows it, but the
  // de-permuted prefix [S, L, U] is not in T -> condition (iii) fails.
  std::vector<size_t> MoveOut = {0, 1, 3, 2};
  EXPECT_FALSE(isUnorderingFunction(IPrime, MoveOut, Contains));
  // Swapping the lock and the write: t'_2 = W must be reorderable with
  // t'_1 = L (it is: access with later acquire) and [S, W[x=1]] must be a
  // prefix in T (it is). This is the roach-motel undo.
  std::vector<size_t> Undo = {0, 2, 1, 3};
  EXPECT_TRUE(isUnorderingFunction(IPrime, Undo, Contains));
  // Non-permutations are rejected.
  EXPECT_FALSE(isUnorderingFunction(IPrime, {0, 0, 1, 2}, Contains));
  EXPECT_FALSE(isUnorderingFunction(IPrime, {0, 1, 2}, Contains));
}

TEST(Unordering, SyncOrderIsPreservedAcrossThreads) {
  // Two threads with externals; an unordering may never swap the external
  // order, so the merged result replays it.
  Program O = parseOrDie(R"(
thread { x := 1; print 1; }
thread { y := 1; print 2; }
)");
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(O, D);
  auto Contains = [&TO](const Trace &Tr) { return TO.contains(Tr); };
  Interleaving IPrime({{0, Action::mkStart(0)},
                       {1, Action::mkStart(1)},
                       {0, Action::mkWrite(Symbol::intern("x"), 1)},
                       {1, Action::mkWrite(Symbol::intern("y"), 1)},
                       {1, Action::mkExternal(2)},
                       {0, Action::mkExternal(1)}});
  UnorderingResult R = findUnordering(IPrime, Contains);
  ASSERT_EQ(R.Verdict, CheckVerdict::Holds);
  Interleaving Unordered = applyUnordering(IPrime, R.F);
  EXPECT_EQ(Unordered.behaviour(), (Behaviour{2, 1}));
}

TEST(Unordering, FailsWhenNoThreadWitnessExists) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(Symbol::intern("x"), 1)});
  auto Contains = [&T](const Trace &Tr) { return T.contains(Tr); };
  Interleaving Bogus({{0, Action::mkStart(0)},
                      {0, Action::mkWrite(Symbol::intern("zz"), 1)}});
  EXPECT_EQ(findUnordering(Bogus, Contains).Verdict, CheckVerdict::Fails);
}

} // namespace
