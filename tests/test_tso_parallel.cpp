//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence tests for the parallel interned TSO/PSO engine
/// (tso/BufferedEngine.cpp) against the sequential exhaustive machines
/// kept as oracles (TsoLimits::ExhaustiveOracle).
///
/// The headline guarantee: behaviour sets are byte-identical across every
/// worker width, with and without store-buffer partial-order reduction,
/// and equal to the oracle — on the full litmus corpus and on randomised
/// programs. Also checks that the reduction actually reduces (visit
/// counts), and that budget exhaustion degrades to an honest truncation
/// instead of a wrong answer.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "support/Budget.h"
#include "tso/Litmus.h"
#include "tso/PsoMachine.h"
#include "tso/TsoMachine.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TsoLimits limits(unsigned Workers, bool UseReduction) {
  TsoLimits L;
  L.Workers = Workers;
  L.UseReduction = UseReduction;
  return L;
}

TsoLimits oracle() {
  TsoLimits L;
  L.ExhaustiveOracle = true;
  return L;
}

/// Asserts the full engine matrix agrees on \p P for one model.
void expectMatrixAgrees(
    const Program &P, const std::string &Name,
    std::set<Behaviour> (*Model)(const Program &, TsoLimits, ExecStats *)) {
  std::set<Behaviour> Want = Model(P, oracle(), nullptr);
  for (unsigned Workers : {1u, 2u, 8u})
    for (bool Reduce : {true, false}) {
      std::set<Behaviour> Got = Model(P, limits(Workers, Reduce), nullptr);
      EXPECT_EQ(Got, Want) << Name << ": workers=" << Workers
                           << " reduction=" << Reduce;
    }
}

TEST(TsoParallel, LitmusCorpusMatchesOracleAtEveryWidth) {
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    expectMatrixAgrees(P, T.Name + " (TSO)", tsoBehaviours);
    expectMatrixAgrees(P, T.Name + " (PSO)", psoBehaviours);
  }
}

TEST(TsoParallel, TsoOnlyBehavioursMatchOracle) {
  // The subtraction path (TSO minus SC) runs both engines; it must be
  // width-independent too.
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    std::set<Behaviour> Want = tsoOnlyBehaviours(P, oracle());
    EXPECT_EQ(tsoOnlyBehaviours(P, limits(8, true)), Want) << T.Name;
    std::set<Behaviour> PsoWant = psoOnlyBehaviours(P, oracle());
    EXPECT_EQ(psoOnlyBehaviours(P, limits(8, true)), PsoWant) << T.Name;
  }
}

TEST(TsoParallel, RandomisedProgramsMatchOracleAtEveryWidth) {
  // Small shapes keep the oracle fast; disciplines rotate so fenced
  // (volatile/lock) and unfenced store-buffer paths are all exercised.
  const GenDiscipline Disciplines[] = {
      GenDiscipline::Racy, GenDiscipline::LockDiscipline,
      GenDiscipline::VolatileLocations, GenDiscipline::Mixed};
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng R(Seed * 0x9E3779B97F4A7C15ULL);
    GenOptions G;
    G.Discipline = Disciplines[Seed % 4];
    G.MaxStmtsPerThread = 4;
    G.AllowIf = false; // keep tracesets small enough for the oracle
    Program P = generateProgram(R, G);
    std::string Name = "seed " + std::to_string(Seed);
    expectMatrixAgrees(P, Name + " (TSO)", tsoBehaviours);
    expectMatrixAgrees(P, Name + " (PSO)", psoBehaviours);
  }
}

TEST(TsoParallel, ReductionPrunesStatesWithoutChangingTheAnswer) {
  // The classic SB shape maximises commutable drain/step pairs; sleep sets
  // must visit strictly fewer nodes and report the same set.
  Program P = parseOrDie(R"(
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)");
  ExecStats Reduced, Full;
  std::set<Behaviour> A = tsoBehaviours(P, limits(1, true), &Reduced);
  std::set<Behaviour> B = tsoBehaviours(P, limits(1, false), &Full);
  EXPECT_EQ(A, B);
  EXPECT_LT(Reduced.Visited, Full.Visited)
      << "sleep-set POR did not prune any store-buffer interleavings";
}

TEST(TsoParallel, BufferBoundEdgesMatchOracle) {
  // The flat per-thread buffer array sizes its stride from
  // min(MaxBufferedStores, MaxActionsPerThread); the tight bounds (1 =
  // every store drains before the next, 2 = one pending reorder window)
  // are where an off-by-one in the packed drain/append logic would show.
  // The answer must track the oracle at the *same* bound, at every width.
  Program P = parseOrDie(R"(
thread { x := 1; x := 2; r1 := y; print r1; }
thread { y := 1; y := 2; r2 := x; print r2; }
)");
  for (size_t Bound : {size_t(1), size_t(2), size_t(8)}) {
    TsoLimits O = oracle();
    O.MaxBufferedStores = Bound;
    std::set<Behaviour> WantTso = tsoBehaviours(P, O, nullptr);
    std::set<Behaviour> WantPso = psoBehaviours(P, O, nullptr);
    for (unsigned Workers : {1u, 8u})
      for (bool Reduce : {true, false}) {
        TsoLimits L = limits(Workers, Reduce);
        L.MaxBufferedStores = Bound;
        EXPECT_EQ(tsoBehaviours(P, L, nullptr), WantTso)
            << "TSO bound=" << Bound << " workers=" << Workers
            << " reduction=" << Reduce;
        EXPECT_EQ(psoBehaviours(P, L, nullptr), WantPso)
            << "PSO bound=" << Bound << " workers=" << Workers
            << " reduction=" << Reduce;
      }
  }
}

TEST(TsoParallel, SharedBudgetExhaustionIsReportedNotWrong) {
  Program P = parseOrDie(R"(
thread { x := 1; x := 2; r1 := y; print r1; }
thread { y := 1; y := 2; r2 := x; print r2; }
)");
  Budget B(BudgetSpec{/*DeadlineMs=*/0, /*MaxVisited=*/10,
                      /*MaxMemoryBytes=*/0});
  TsoLimits L = limits(2, true);
  L.Shared = &B;
  ExecStats Stats;
  std::set<Behaviour> Got = tsoBehaviours(P, L, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.Reason, TruncationReason::StateCap);
  // A truncated answer must still be a subset of the true set.
  std::set<Behaviour> Want = tsoBehaviours(P);
  for (const Behaviour &Beh : Got)
    EXPECT_TRUE(Want.count(Beh));
}

TEST(TsoParallel, CancellationUnwindsPromptly) {
  Program P = parseOrDie(R"(
thread { x := 1; x := 2; r1 := y; print r1; }
thread { y := 1; y := 2; r2 := x; print r2; }
)");
  CancelToken Cancel;
  Cancel.request();
  Budget B(BudgetSpec{}, &Cancel);
  TsoLimits L = limits(8, true);
  L.Shared = &B;
  ExecStats Stats;
  tsoBehaviours(P, L, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.Reason, TruncationReason::Cancelled);
}

} // namespace
