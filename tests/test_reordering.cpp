//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for semantic reordering (§4): reordering functions,
/// de-permutations of prefixes (Fig 4's worked example), and the
/// traceset-level checker including the roach-motel cases.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "semantics/Reordering.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId M() { return Symbol::intern("m"); }

TEST(Depermutation, Fig4WorkedExample) {
  // t' = [S(0), W[x=1], R[y=1], X(1)], f = {(0,0),(1,2),(2,1),(3,3)}.
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 1),
               Action::mkRead(Y(), 1), Action::mkExternal(1)};
  Permutation F = {0, 2, 1, 3};
  EXPECT_TRUE(isReorderingFunction(TPrime, F));
  // n = 4: full de-permutation swaps the middle two.
  EXPECT_EQ(depermute(TPrime, F),
            (Trace{Action::mkStart(0), Action::mkRead(Y(), 1),
                   Action::mkWrite(X(), 1), Action::mkExternal(1)}));
  // n = 3: first three source elements at targets 0,2,1.
  EXPECT_EQ(depermutePrefix(TPrime, F, 3),
            (Trace{Action::mkStart(0), Action::mkRead(Y(), 1),
                   Action::mkWrite(X(), 1)}));
  // n = 2: [S(0), W[x=1]] — exactly the trace §4 had to add via an
  // irrelevant-read elimination.
  EXPECT_EQ(depermutePrefix(TPrime, F, 2),
            (Trace{Action::mkStart(0), Action::mkWrite(X(), 1)}));
  // n = 1 and n = 0.
  EXPECT_EQ(depermutePrefix(TPrime, F, 1), (Trace{Action::mkStart(0)}));
  EXPECT_EQ(depermutePrefix(TPrime, F, 0), Trace());
}

TEST(ReorderingFunction, RejectsNonReorderablSwaps) {
  // Swapping a write with a later conflicting read of the same location.
  Trace TPrime{Action::mkStart(0), Action::mkRead(X(), 1),
               Action::mkWrite(X(), 1)};
  Permutation Swap = {0, 2, 1};
  EXPECT_FALSE(isReorderingFunction(TPrime, Swap));
  EXPECT_TRUE(isReorderingFunction(TPrime, identityPermutation(3)));
}

TEST(ReorderingFunction, RoachMotelDirectionality) {
  // t' = [S, L[m], W[x=1]]: the write was moved *into* the lock (it
  // followed the lock in t' but preceded it in t). f maps the lock later:
  // f = {(0,0),(1,2),(2,1)} requires t'_2 (W) reorderable with t'_1 (L):
  // access-with-later-acquire — allowed.
  Trace In{Action::mkStart(0), Action::mkLock(M()), Action::mkWrite(X(), 1)};
  EXPECT_TRUE(isReorderingFunction(In, {0, 2, 1}));
  // The opposite: t' = [S, W[x=1], U[m]] with the write having been moved
  // *out* of the lock (it preceded the unlock in t', followed it in t):
  // requires t'_2 (U) reorderable with t'_1 (W) — release with later
  // access — allowed too (that is R-UW's direction).
  Trace Out{Action::mkStart(0), Action::mkWrite(X(), 1),
            Action::mkUnlock(M())};
  EXPECT_TRUE(isReorderingFunction(Out, {0, 2, 1}));
  // But moving a read *before* an acquire it followed: t' = [S, R, L] with
  // f = {(0,0),(1,2),(2,1)} requires t'_2 (L) reorderable with t'_1 (R):
  // acquires reorder with nothing.
  Trace Escape{Action::mkStart(0), Action::mkRead(X(), 0),
               Action::mkLock(M())};
  EXPECT_FALSE(isReorderingFunction(Escape, {0, 2, 1}));
}

TEST(FindDepermutation, IdentityWhenTraceIsPresent) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1),
                 Action::mkWrite(Y(), 1)});
  auto Contains = [&](const Trace &Tr) { return T.contains(Tr); };
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 1),
               Action::mkWrite(Y(), 1)};
  std::optional<Permutation> F = findDepermutation(TPrime, Contains);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(*F, identityPermutation(3));
}

TEST(FindDepermutation, FindsTheSwap) {
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1),
                 Action::mkWrite(Y(), 2)});
  // Also the prefix with only the y-write must exist for the de-permuted
  // prefix of length 2... it does not, so expect failure first:
  Trace TPrime{Action::mkStart(0), Action::mkWrite(Y(), 2),
               Action::mkWrite(X(), 1)};
  auto Contains = [&](const Trace &Tr) { return T.contains(Tr); };
  EXPECT_FALSE(findDepermutation(TPrime, Contains).has_value());
  // Add the missing prefix [S, W[y=2]] (as the paper does via elimination)
  // and the search succeeds.
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(Y(), 2)});
  std::optional<Permutation> F = findDepermutation(TPrime, Contains);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(*F, (Permutation{0, 2, 1}));
}

TEST(CheckReordering, IdentityHolds) {
  Program P = parseOrDie("thread { r1 := x; y := r1; print r1; }");
  Traceset T = programTraceset(P, {0, 1});
  EXPECT_EQ(checkReordering(T, T).Verdict, CheckVerdict::Holds);
}

TEST(CheckReordering, IndependentWritesSwap) {
  Program O = parseOrDie("thread { x := 1; y := 2; print 3; }");
  Program T = parseOrDie("thread { y := 2; x := 1; print 3; }");
  std::vector<Value> D = {0, 1, 2, 3};
  TransformCheckResult R =
      checkReordering(programTraceset(O, D), programTraceset(T, D));
  // The prefix [S, W[y=2]] of the transformed thread has no de-permutation
  // into the original traceset (the original must write x first), so the
  // *pure* reordering fails — exactly the §4 phenomenon...
  EXPECT_EQ(R.Verdict, CheckVerdict::Fails);
  // ...while the composite with eliminations succeeds (the x-write is a
  // redundant last write in the witness for that prefix).
  TransformCheckResult R2 = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_EQ(R2.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R2.Counterexample.str();
}

TEST(CheckReordering, ConflictingSwapFails) {
  Program O = parseOrDie("thread { x := 1; r1 := x; print r1; }");
  Program T = parseOrDie("thread { r1 := x; x := 1; print r1; }");
  std::vector<Value> D = {0, 1};
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_NE(R.Verdict, CheckVerdict::Holds);
}

TEST(CheckReordering, RoachMotelIntoLockHolds) {
  // R-WL's semantics: x:=1 moves after the lock.
  Program O = parseOrDie("thread { x := 1; lock m; print 0; unlock m; }");
  Program T = parseOrDie("thread { lock m; x := 1; print 0; unlock m; }");
  std::vector<Value> D = {0, 1};
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

TEST(CheckReordering, EscapingTheLockFails) {
  // The reverse roach-motel — moving the write *out* in front of the lock
  // — is not a reordering (acquires move across nothing).
  Program O = parseOrDie("thread { lock m; x := 1; print 0; unlock m; }");
  Program T = parseOrDie("thread { x := 1; lock m; print 0; unlock m; }");
  std::vector<Value> D = {0, 1};
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_NE(R.Verdict, CheckVerdict::Holds);
}

TEST(CheckReordering, PureReorderingHoldsWhenPrefixesExist) {
  // A hand-built traceset containing the needed de-permuted prefix: the
  // pure (no-elimination) reordering relation then holds.
  SymbolId X = Symbol::intern("x"), Y = Symbol::intern("y");
  Traceset T({0, 1});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X, 1),
                 Action::mkWrite(Y, 1)});
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(Y, 1)}); // The prefix.
  Traceset TPrime({0, 1});
  TPrime.insert(Trace{Action::mkStart(0), Action::mkWrite(Y, 1),
                      Action::mkWrite(X, 1)});
  EXPECT_EQ(checkReordering(T, TPrime).Verdict, CheckVerdict::Holds);
}

TEST(CheckReordering, TruncationYieldsUnknown) {
  Program O = parseOrDie("thread { x := 1; y := 2; print 3; }");
  Program T = parseOrDie("thread { y := 2; x := 1; print 3; }");
  std::vector<Value> D = {0, 1, 2, 3};
  ReorderingSearchLimits Tight;
  Tight.MaxNodesPerTrace = 1;
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D), {}, Tight);
  EXPECT_EQ(R.Verdict, CheckVerdict::Unknown);
}

TEST(CheckReordering, UnlockDeferredAfterWriteHolds) {
  // R-UW's semantics: unlock m; x:=1  ->  x:=1; unlock m.
  Program O = parseOrDie("thread { lock m; print 0; unlock m; x := 1; }");
  Program T = parseOrDie("thread { lock m; print 0; x := 1; unlock m; }");
  std::vector<Value> D = {0, 1};
  TransformCheckResult R = checkEliminationThenReordering(
      programTraceset(O, D), programTraceset(T, D));
  EXPECT_EQ(R.Verdict, CheckVerdict::Holds)
      << "counterexample: " << R.Counterexample.str();
}

} // namespace
