//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the AST: cloning, structural equality, symbol
/// collection, sync-freedom, and constant containment (the Theorem 5 side
/// condition).
///
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(Ast, CloneIsDeepAndEqual) {
  Program P = parseOrDie(R"(
volatile v;
thread {
  r1 := x;
  if (r1 == 0) { v := 1; } else { while (r1 != 0) { r1 := 0; } }
}
)");
  Program Q = P; // Copy constructor deep-clones.
  EXPECT_TRUE(P.equals(Q));
  // Mutating the copy does not affect the original.
  Q.thread(0).push_back(std::make_unique<SkipStmt>());
  EXPECT_FALSE(P.equals(Q));
  EXPECT_EQ(P.thread(0).size(), 2u);
}

TEST(Ast, EqualityIsStructural) {
  Program A = parseOrDie("thread { r1 := x; print r1; }");
  Program B = parseOrDie("thread { r1 := x; print r1; }");
  Program C = parseOrDie("thread { r1 := x; print 1; }");
  EXPECT_TRUE(A.equals(B));
  EXPECT_FALSE(A.equals(C));
  Program D = parseOrDie("volatile x; thread { r1 := x; print r1; }");
  EXPECT_FALSE(A.equals(D)); // Volatile sets are part of the program (§2).
}

TEST(Ast, ClassofAndCasts) {
  Program P = parseOrDie("thread { r1 := x; lock m; }");
  const Stmt &Load = *P.thread(0)[0];
  EXPECT_TRUE(isa<LoadStmt>(Load));
  EXPECT_FALSE(isa<StoreStmt>(Load));
  EXPECT_NE(dyn_cast<LoadStmt>(&Load), nullptr);
  EXPECT_EQ(dyn_cast<LockStmt>(&Load), nullptr);
  EXPECT_EQ(cast<LoadStmt>(Load).loc(), Symbol::intern("x"));
}

TEST(Ast, CollectSymbolsSeparatesNamespaces) {
  Program P = parseOrDie(
      "thread { r1 := x; y := r2; lock m; unlock m; print r3; }");
  std::set<SymbolId> Regs, Locs, Mons;
  for (const StmtPtr &S : P.thread(0))
    S->collectSymbols(Regs, Locs, Mons);
  EXPECT_EQ(Regs, (std::set<SymbolId>{Symbol::intern("r1"),
                                      Symbol::intern("r2"),
                                      Symbol::intern("r3")}));
  EXPECT_EQ(Locs, (std::set<SymbolId>{Symbol::intern("x"),
                                      Symbol::intern("y")}));
  EXPECT_EQ(Mons, (std::set<SymbolId>{Symbol::intern("m")}));
}

TEST(Ast, ProgramWideSymbolQueries) {
  Program P = parseOrDie(
      "thread { r1 := x; } thread { y := 1; lock m; unlock m; }");
  EXPECT_EQ(P.locations(), (std::set<SymbolId>{Symbol::intern("x"),
                                               Symbol::intern("y")}));
  EXPECT_EQ(P.registers(), (std::set<SymbolId>{Symbol::intern("r1")}));
  EXPECT_EQ(P.monitors(), (std::set<SymbolId>{Symbol::intern("m")}));
}

TEST(Ast, SyncFreePredicate) {
  Program P = parseOrDie(R"(
volatile v;
thread {
  r1 := x;
  lock m;
  r2 := v;
  if (r1 == 0) { unlock m; } else { skip; }
  print r1;
}
)");
  const StmtList &L = P.thread(0);
  const std::set<SymbolId> &Vol = P.volatiles();
  EXPECT_TRUE(L[0]->isSyncFree(Vol));  // Plain load.
  EXPECT_FALSE(L[1]->isSyncFree(Vol)); // Lock.
  EXPECT_FALSE(L[2]->isSyncFree(Vol)); // Volatile load.
  EXPECT_FALSE(L[3]->isSyncFree(Vol)); // Unlock nested in the if.
  EXPECT_TRUE(L[4]->isSyncFree(Vol));  // Print.
}

TEST(Ast, MentionsAnyLooksEverywhere) {
  Program P = parseOrDie(
      "thread { if (r1 == 0) { x := r2; } else { skip; } }");
  const Stmt &If = *P.thread(0)[0];
  EXPECT_TRUE(If.mentionsAny({Symbol::intern("r1")}));
  EXPECT_TRUE(If.mentionsAny({Symbol::intern("r2")}));
  EXPECT_TRUE(If.mentionsAny({Symbol::intern("x")}));
  EXPECT_FALSE(If.mentionsAny({Symbol::intern("zz")}));
}

TEST(Ast, ContainsConstantChecksValuePositions) {
  Program P = parseOrDie(R"(
thread {
  r1 := 5;
  x := 6;
  print 7;
  if (r1 == 8) { skip; } else { skip; }
}
)");
  EXPECT_TRUE(P.containsConstant(5));
  EXPECT_TRUE(P.containsConstant(6));
  EXPECT_TRUE(P.containsConstant(7));
  // 8 appears only in a comparison: it cannot flow into memory or output.
  EXPECT_FALSE(P.containsConstant(8));
  EXPECT_FALSE(P.containsConstant(42));
}

TEST(Ast, ContainsConstantDescendsIntoControlFlow) {
  Program P = parseOrDie(
      "thread { while (r1 != 0) { if (r1 == r1) { { x := 9; } } "
      "else { skip; } } }");
  EXPECT_TRUE(P.containsConstant(9));
}

TEST(Ast, OperandAndCondPrinting) {
  EXPECT_EQ(Operand::imm(3).str(), "3");
  EXPECT_EQ(Operand::reg("r1").str(), "r1");
  EXPECT_EQ(Cond::eq(Operand::reg("r1"), Operand::imm(0)).str(), "r1 == 0");
  EXPECT_EQ(Cond::ne(Operand::imm(1), Operand::imm(2)).str(), "1 != 2");
}

} // namespace
