//===----------------------------------------------------------------------===//
///
/// \file
/// Theorems 1 and 2 at the *traceset* level: whenever the checker certifies
/// T' as an elimination (or reordering of an elimination) of a data race
/// free T, then T' is data race free and every behaviour of T' is a
/// behaviour of T — computed with the traceset execution enumerator, not
/// the program executor, so this exercises the semantic layer end to end.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Printer.h"
#include "opt/Rewrite.h"
#include "semantics/Reordering.h"
#include "trace/Enumerate.h"
#include "verify/ProgramGen.h"
#include "verify/Theorems.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

struct Case {
  uint64_t Seed;
  GenDiscipline Discipline;
};

class SemanticSoundness : public ::testing::TestWithParam<Case> {};

TEST_P(SemanticSoundness, CertifiedStepsPreserveDrfAndBehaviours) {
  GenOptions Options;
  Options.Discipline = GetParam().Discipline;
  Options.MaxStmtsPerThread = 4;
  Options.Locations = 2;
  Rng R(GetParam().Seed);
  Program P = generateProgram(R, Options);
  std::vector<Value> D = defaultDomainFor(P, 2);
  ExploreStats GenStats;
  Traceset T = programTraceset(P, D, {}, &GenStats);
  ASSERT_FALSE(GenStats.Truncated);

  RaceReport Race = findAdjacentRace(T);
  ASSERT_FALSE(Race.Stats.Truncated);
  if (Race.HasRace)
    GTEST_SKIP() << "racy seed: Theorems 1/2 are vacuous";
  std::set<Behaviour> Base = collectBehaviours(T);

  size_t StepsChecked = 0;
  for (const RewriteSite &Site : findRewriteSites(P)) {
    Program Q = applyRewrite(P, Site);
    Traceset TQ = programTraceset(Q, D);
    TransformCheckResult Check =
        isEliminationRule(Site.Rule)
            ? checkElimination(T, TQ)
            : checkEliminationThenReordering(T, TQ);
    ASSERT_EQ(Check.Verdict, CheckVerdict::Holds)
        << Site.str() << " on\n" << printProgram(P);

    // Theorem 2/1 conclusions at the traceset level.
    RaceReport QRace = findAdjacentRace(TQ);
    ASSERT_FALSE(QRace.Stats.Truncated);
    EXPECT_FALSE(QRace.HasRace)
        << Site.str() << " broke DRF on\n" << printProgram(P);
    for (const Behaviour &B : collectBehaviours(TQ))
      EXPECT_TRUE(Base.count(B))
          << Site.str() << " introduced a behaviour on\n" << printProgram(P);
    ++StepsChecked;
  }
  // Some seeds have no applicable sites; that is fine, but record it.
  SUCCEED() << StepsChecked << " steps checked";
}

std::vector<Case> cases() {
  std::vector<Case> Out;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    Out.push_back(Case{Seed, GenDiscipline::LockDiscipline});
    Out.push_back(Case{Seed, GenDiscipline::VolatileLocations});
  }
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticSoundness,
                         ::testing::ValuesIn(cases()),
                         [](const auto &Info) {
                           const Case &C = Info.param;
                           std::string D =
                               C.Discipline == GenDiscipline::LockDiscipline
                                   ? "locked"
                                   : "volatile";
                           return D + "_seed" +
                                  std::to_string(C.Seed);
                         });

} // namespace
