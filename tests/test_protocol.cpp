//===----------------------------------------------------------------------===//
///
/// \file
/// Wire-protocol decoder tests (torn, truncated, and garbage frames; CRC
/// detection; pipelined decoding) plus the client backoff schedule and a
/// socketpair-driven retry test under injected transport faults. The
/// decoder is pure, so every corruption case runs without a socket.
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/Protocol.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

Frame submitFrame(uint64_t Id) {
  Frame F;
  F.Type = FrameType::Submit;
  F.RequestId = Id;
  QueryRequest Q;
  Q.Kind = QueryKind::DrfGuarantee;
  Q.Program = "thread { x := 1; }\n";
  Q.Transformed = "thread { x := 1; x := 1; }\n";
  Q.Budget = BudgetSpec{/*DeadlineMs=*/250, /*MaxVisited=*/1000,
                        /*MaxMemoryBytes=*/1 << 20};
  F.Payload = encodeSubmit(Q);
  return F;
}

TEST(Protocol, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Protocol, FrameRoundTrips) {
  Frame In = submitFrame(42);
  std::string Buf = encodeFrame(In);
  Frame Out;
  ASSERT_EQ(decodeFrame(Buf, Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Type, FrameType::Submit);
  EXPECT_EQ(Out.RequestId, 42u);
  EXPECT_EQ(Out.Payload, In.Payload);
  EXPECT_TRUE(Buf.empty()) << "the decoded frame must be consumed";

  QueryRequest Q;
  ASSERT_TRUE(decodeSubmit(Out.Payload, Q));
  EXPECT_EQ(Q.Kind, QueryKind::DrfGuarantee);
  EXPECT_EQ(Q.Program, "thread { x := 1; }\n");
  EXPECT_EQ(Q.Budget.DeadlineMs, 250);
  EXPECT_EQ(Q.Budget.MaxVisited, 1000u);
}

TEST(Protocol, ResponseRoundTripsAndRenders) {
  QueryResponse R;
  R.Status = ResponseStatus::Ok;
  R.Kind = VerdictKind::Refuted;
  R.Reason = TruncationReason::None;
  R.Degraded = true;
  R.Visited = 1234;
  R.Detail = "race";
  std::string Payload = encodeResponse(R);
  QueryResponse Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_EQ(Out.str(), R.str());
  EXPECT_EQ(Out.str(), "ok refuted none degraded visited=1234 race");
}

TEST(Protocol, TruncatedFramesAskForMoreAtEveryPrefix) {
  std::string Whole = encodeFrame(submitFrame(7));
  // Every strict prefix is NeedMore — the decoder must never misparse a
  // torn frame, whether the tear is in the header or the payload.
  for (size_t Len = 0; Len < Whole.size(); ++Len) {
    std::string Buf = Whole.substr(0, Len);
    Frame Out;
    EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::NeedMore) << Len;
    EXPECT_EQ(Buf.size(), Len) << "NeedMore must not consume bytes";
  }
}

TEST(Protocol, PipelinedFramesDecodeOneAtATime) {
  std::string Buf = encodeFrame(submitFrame(1)) +
                    encodeFrame(submitFrame(2)) +
                    encodeFrame(submitFrame(3));
  for (uint64_t Want = 1; Want <= 3; ++Want) {
    Frame Out;
    ASSERT_EQ(decodeFrame(Buf, Out), DecodeStatus::Ok);
    EXPECT_EQ(Out.RequestId, Want);
  }
  Frame Out;
  EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::NeedMore);
}

TEST(Protocol, GarbageIsRejectedNotParsed) {
  Frame Out;
  {
    std::string Buf(64, '\xA5'); // random-ish junk, wrong magic
    EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::BadMagic);
  }
  {
    std::string Buf = encodeFrame(submitFrame(1));
    Buf[4] = 99; // version byte
    EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::BadVersion);
  }
  {
    std::string Buf = encodeFrame(submitFrame(1));
    Buf[16] = '\xFF'; // payload length -> > MaxFramePayload
    Buf[17] = '\xFF';
    Buf[18] = '\xFF';
    Buf[19] = '\x7F';
    EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::BadLength);
  }
}

TEST(Protocol, BitFlipsAreCaughtByTheCrc) {
  std::string Whole = encodeFrame(submitFrame(9));
  // Flip one bit in every payload byte in turn: all must be BadCrc.
  for (size_t I = FrameHeaderSize; I < Whole.size(); I += 7) {
    std::string Buf = Whole;
    Buf[I] = static_cast<char>(Buf[I] ^ 0x10);
    Frame Out;
    EXPECT_EQ(decodeFrame(Buf, Out), DecodeStatus::BadCrc) << I;
  }
}

TEST(Protocol, MalformedPayloadsFailCleanly) {
  QueryRequest Q;
  EXPECT_FALSE(decodeSubmit("", Q));
  std::string Good = encodeSubmit(Q);
  EXPECT_FALSE(decodeSubmit(Good.substr(0, Good.size() - 1), Q));
  EXPECT_FALSE(decodeSubmit(Good + "x", Q)) << "trailing bytes rejected";
  std::string BadKind = Good;
  BadKind[0] = 99;
  EXPECT_FALSE(decodeSubmit(BadKind, Q));
  QueryResponse R;
  EXPECT_FALSE(decodeResponse("", R));
}

TEST(Backoff, DeterministicBoundedAndJittered) {
  // Same seed, same schedule.
  uint64_t R1 = 77, R2 = 77;
  for (unsigned A = 0; A < 12; ++A)
    EXPECT_EQ(backoffDelayMs(A, 10, 1000, R1),
              backoffDelayMs(A, 10, 1000, R2));

  // Every delay respects the truncated-exponential ceiling.
  uint64_t R = 5;
  for (unsigned A = 0; A < 40; ++A) {
    uint64_t Ceil = std::min<uint64_t>(1000, 10ull << std::min(A, 20u));
    EXPECT_LE(backoffDelayMs(A, 10, 1000, R), Ceil) << A;
  }

  // Jitter actually varies (not a constant schedule).
  uint64_t R3 = 123;
  uint64_t First = backoffDelayMs(6, 10, 1000, R3);
  bool Varied = false;
  for (int I = 0; I < 16 && !Varied; ++I)
    Varied = backoffDelayMs(6, 10, 1000, R3) != First;
  EXPECT_TRUE(Varied);

  // Degenerate parameters do not divide by zero.
  uint64_t R4 = 1;
  EXPECT_EQ(backoffDelayMs(0, 0, 0, R4), 0u);
}

TEST(Transport, ReadFrameSurvivesByteAtATimeDelivery) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Whole = encodeFrame(submitFrame(11));
  std::thread Writer([&] {
    for (char C : Whole) {
      ASSERT_EQ(::write(Fds[0], &C, 1), 1);
    }
    ::shutdown(Fds[0], SHUT_WR);
  });
  std::string Buf;
  Frame Out;
  EXPECT_TRUE(readFrame(Fds[1], Buf, Out));
  EXPECT_EQ(Out.RequestId, 11u);
  EXPECT_FALSE(readFrame(Fds[1], Buf, Out)) << "then a clean EOF";
  Writer.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(Transport, MidFrameEofIsAnError) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Whole = encodeFrame(submitFrame(12));
  ASSERT_GT(::write(Fds[0], Whole.data(), Whole.size() / 2), 0);
  ::shutdown(Fds[0], SHUT_WR);
  std::string Buf;
  Frame Out;
  EXPECT_THROW(readFrame(Fds[1], Buf, Out), ProtocolError);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(Transport, InjectedFaultsThrowAtTheInstrumentedSites) {
  FaultPlan Plan;
  Plan.arm(FaultSite::ProtoWrite, 1);
  Plan.arm(FaultSite::ProtoRead, 1);
  FaultPlan::Scope Armed(Plan);
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  EXPECT_THROW(writeFrame(Fds[0], submitFrame(1)), ProtocolError);
  // Disarmed after one fire: the next write goes through.
  EXPECT_NO_THROW(writeFrame(Fds[0], submitFrame(2)));
  std::string Buf;
  Frame Out;
  EXPECT_THROW(readFrame(Fds[1], Buf, Out), ProtocolError);
  EXPECT_TRUE(readFrame(Fds[1], Buf, Out));
  EXPECT_EQ(Out.RequestId, 2u);
  EXPECT_EQ(Plan.fired(FaultSite::ProtoWrite), 1u);
  EXPECT_EQ(Plan.fired(FaultSite::ProtoRead), 1u);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

} // namespace
