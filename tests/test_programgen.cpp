//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the random program generator: structural well-formedness,
/// printer round-trips, and DRF-by-construction for the disciplined modes.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

class GenSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenSeeds, ProgramsRoundTripThroughThePrinter) {
  for (GenDiscipline D : {GenDiscipline::Racy, GenDiscipline::LockDiscipline,
                          GenDiscipline::VolatileLocations}) {
    GenOptions Options;
    Options.Discipline = D;
    Rng R(GetParam());
    Program P = generateProgram(R, Options);
    EXPECT_EQ(P.threadCount(), Options.Threads);
    ParseResult Back = parseProgram(printProgram(P));
    ASSERT_TRUE(Back) << Back.Error << "\n" << printProgram(P);
    EXPECT_TRUE(P.equals(*Back.Prog));
  }
}

TEST_P(GenSeeds, LockDisciplineImpliesDataRaceFreedom) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::LockDiscipline;
  Options.MaxStmtsPerThread = 5;
  Rng R(GetParam());
  Program P = generateProgram(R, Options);
  EXPECT_TRUE(isProgramDrf(P)) << printProgram(P);
}

TEST_P(GenSeeds, MixedDisciplineImpliesDataRaceFreedom) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::Mixed;
  Options.MaxStmtsPerThread = 5;
  Rng R(GetParam());
  Program P = generateProgram(R, Options);
  EXPECT_TRUE(isProgramDrf(P)) << printProgram(P);
}

TEST_P(GenSeeds, VolatileDisciplineImpliesDataRaceFreedom) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::VolatileLocations;
  Options.MaxStmtsPerThread = 5;
  Rng R(GetParam());
  Program P = generateProgram(R, Options);
  for (SymbolId Loc : P.locations())
    EXPECT_TRUE(P.isVolatile(Loc));
  EXPECT_TRUE(isProgramDrf(P)) << printProgram(P);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenSeeds,
                         ::testing::Range<uint64_t>(1, 26));

TEST(Gen, Deterministic) {
  GenOptions Options;
  Rng A(5), B(5);
  EXPECT_TRUE(generateProgram(A, Options).equals(generateProgram(B, Options)));
}

TEST(Gen, RespectsStatementBudget) {
  GenOptions Options;
  Options.MinStmtsPerThread = 2;
  Options.MaxStmtsPerThread = 4;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    Program P = generateProgram(R, Options);
    for (ThreadId T = 0; T < P.threadCount(); ++T)
      EXPECT_GE(P.thread(T).size(), 2u);
  }
}

TEST(Gen, RacyModeActuallyRacesSometimes) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::Racy;
  size_t Racy = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    if (!isProgramDrf(generateProgram(R, Options)))
      ++Racy;
  }
  EXPECT_GT(Racy, 0u);
}

} // namespace
