//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the verification queries: behaviour comparison, the DRF
/// guarantee report, and the thin-air report.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "verify/Checks.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(CompareBehaviours, EqualPrograms) {
  Program P = parseOrDie("thread { x := 1; print 1; }");
  BehaviourComparison C = compareBehaviours(P, P);
  EXPECT_TRUE(C.Subset);
  EXPECT_TRUE(C.Equal);
  EXPECT_FALSE(C.Truncated);
}

TEST(CompareBehaviours, ProperSubset) {
  Program O = parseOrDie("thread { r1 := x; print r1; } thread { x := 1; }");
  Program T = parseOrDie("thread { print 0; } thread { x := 1; }");
  BehaviourComparison C = compareBehaviours(O, T);
  EXPECT_TRUE(C.Subset);
  EXPECT_FALSE(C.Equal);
}

TEST(CompareBehaviours, NewBehaviourIsWitnessed) {
  Program O = parseOrDie("thread { print 1; }");
  Program T = parseOrDie("thread { print 2; }");
  BehaviourComparison C = compareBehaviours(O, T);
  EXPECT_FALSE(C.Subset);
  ASSERT_TRUE(C.NewBehaviour.has_value());
  EXPECT_EQ(*C.NewBehaviour, (Behaviour{2}));
}

TEST(DrfGuarantee, HoldsOnIdentity) {
  Program P = parseOrDie(
      "thread { lock m; x := 1; unlock m; } "
      "thread { lock m; r1 := x; unlock m; print r1; }");
  DrfGuaranteeReport R = checkDrfGuarantee(P, P);
  EXPECT_TRUE(R.OriginalDrf);
  EXPECT_TRUE(R.TransformedDrf);
  EXPECT_TRUE(R.BehavioursPreserved);
  EXPECT_TRUE(R.holds());
}

TEST(DrfGuarantee, VacuousForRacyOriginals) {
  Program O = parseOrDie("thread { x := 1; } thread { r1 := x; print r1; }");
  Program T = parseOrDie("thread { x := 1; } thread { print 9; }");
  DrfGuaranteeReport R = checkDrfGuarantee(O, T);
  EXPECT_FALSE(R.OriginalDrf);
  EXPECT_FALSE(R.BehavioursPreserved);
  EXPECT_TRUE(R.holds()) << "racy original => guarantee is vacuous";
}

TEST(DrfGuarantee, ViolationIsDetected) {
  Program O = parseOrDie("thread { print 1; }");
  Program T = parseOrDie("thread { print 2; }");
  DrfGuaranteeReport R = checkDrfGuarantee(O, T);
  EXPECT_TRUE(R.OriginalDrf);
  EXPECT_FALSE(R.holds());
  ASSERT_TRUE(R.NewBehaviour.has_value());
}

TEST(DrfGuarantee, RaceIntroductionIsAViolation) {
  Program O = parseOrDie(
      "thread { lock m; x := 1; unlock m; } "
      "thread { lock m; r1 := x; unlock m; }");
  Program T = parseOrDie(
      "thread { x := 1; } thread { r1 := x; }");
  DrfGuaranteeReport R = checkDrfGuarantee(O, T);
  EXPECT_TRUE(R.OriginalDrf);
  EXPECT_FALSE(R.TransformedDrf);
  EXPECT_FALSE(R.holds());
}

TEST(ProgramCanOutput, FindsValuesAnywhereInBehaviours) {
  Program P = parseOrDie("thread { print 1; print 2; }");
  EXPECT_TRUE(programCanOutput(P, 1));
  EXPECT_TRUE(programCanOutput(P, 2));
  EXPECT_FALSE(programCanOutput(P, 3));
}

TEST(ThinAir, HoldsWhenConstantAbsent) {
  Program P = parseOrDie("thread { r1 := x; y := r1; print r1; } "
                         "thread { r2 := y; x := r2; }");
  ThinAirReport R = checkThinAir(P, P, 42);
  EXPECT_FALSE(R.OrigContainsConstant);
  EXPECT_FALSE(R.TransformedOutputs);
  EXPECT_FALSE(R.OrigHasOrigin);
  EXPECT_FALSE(R.TransformedHasOrigin);
  EXPECT_TRUE(R.holds());
}

TEST(ThinAir, VacuousWhenConstantPresent) {
  Program P = parseOrDie("thread { x := 42; }");
  ThinAirReport R = checkThinAir(P, P, 42);
  EXPECT_TRUE(R.OrigContainsConstant);
  EXPECT_TRUE(R.holds());
}

TEST(ThinAir, DetectsManufacturedConstants) {
  // A "transformation" that invents 42 out of thin air.
  Program O = parseOrDie("thread { r1 := x; print r1; }");
  Program T = parseOrDie("thread { r1 := 42; print r1; }");
  ThinAirReport R = checkThinAir(O, T, 42);
  EXPECT_FALSE(R.OrigContainsConstant);
  EXPECT_TRUE(R.TransformedOutputs);
  EXPECT_TRUE(R.TransformedHasOrigin);
  EXPECT_FALSE(R.holds());
}

TEST(ThinAir, LaunderedValuesAreNotOrigins) {
  // The transformed program writes 42 only after reading it: no origin.
  Program O = parseOrDie("thread { r1 := x; y := r1; }");
  ThinAirReport R = checkThinAir(O, O, 42);
  EXPECT_FALSE(R.TransformedHasOrigin);
  EXPECT_TRUE(R.holds());
}

TEST(CompareBehaviours, TruncationPropagates) {
  Program P = parseOrDie("thread { x := 1; } thread { r1 := x; print r1; }");
  ExecLimits Limits;
  Limits.MaxVisited = 2;
  BehaviourComparison C = compareBehaviours(P, P, Limits);
  EXPECT_TRUE(C.Truncated);
}

TEST(DrfGuarantee, TruncationMeansNotProven) {
  Program P = parseOrDie("thread { lock m; x := 1; unlock m; }");
  ExecLimits Limits;
  Limits.MaxVisited = 1;
  DrfGuaranteeReport R = checkDrfGuarantee(P, P, Limits);
  EXPECT_TRUE(R.Truncated);
  EXPECT_FALSE(R.holds()) << "a truncated check must not claim the "
                             "guarantee";
}

TEST(FreshConstant, AvoidsProgramConstantsAndZero) {
  Program P = parseOrDie("thread { x := 42; r1 := 43; print 44; }");
  Value C = freshConstantFor(P);
  EXPECT_NE(C, 0);
  EXPECT_FALSE(P.containsConstant(C));
  EXPECT_EQ(C, 45);
}

} // namespace
