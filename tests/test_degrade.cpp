//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for graceful degradation: a faulted parallel query falls back to
/// the sequential ExhaustiveOracle and still produces the right answer,
/// cancellation wins over retry, and the remaining-budget arithmetic stays
/// bounded.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "support/Failure.h"
#include "verify/BehaviourCache.h"
#include "verify/Degrade.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

Traceset tracesetFor(const std::string &Source) {
  Program P = parseOrDie(Source);
  ExploreLimits L;
  L.MaxActions = 10;
  return programTraceset(P, defaultDomainFor(P, 2), L);
}

const char *const RacySource = "thread { r0 := x; y := r0; x := 2; }\n"
                               "thread { r1 := y; x := 1; print r1; }\n";

const char *const DrfSource =
    "thread { sync m { x := 1; x := 2; } }\n"
    "thread { sync m { r0 := x; } print r0; }\n";

BudgetSpec generous() {
  return BudgetSpec{/*DeadlineMs=*/10'000, /*MaxVisited=*/5'000'000,
                    /*MaxMemoryBytes=*/256u << 20};
}

TEST(RemainingBudget, SubtractsUsageAndFloorsAtOne) {
  BudgetSpec Spec{/*DeadlineMs=*/10'000, /*MaxVisited=*/1'000, 0};
  Budget Used(Spec);
  for (int I = 0; I < 100; ++I)
    ASSERT_TRUE(Used.charge());
  BudgetSpec Rem = remainingBudget(Spec, Used);
  EXPECT_EQ(Rem.MaxVisited, 900u);
  EXPECT_GE(Rem.DeadlineMs, 1);
  EXPECT_LE(Rem.DeadlineMs, 10'000);

  // Fully spent: floored at 1, never 0 (0 would mean unlimited).
  Budget Spent(BudgetSpec{0, /*MaxVisited=*/50, 0});
  while (Spent.charge())
    ;
  BudgetSpec Floor = remainingBudget(BudgetSpec{0, 50, 0}, Spent);
  EXPECT_EQ(Floor.MaxVisited, 1u);

  // Unlimited fields stay unlimited.
  BudgetSpec Unlimited = remainingBudget(BudgetSpec{}, Used);
  EXPECT_EQ(Unlimited.DeadlineMs, 0);
  EXPECT_EQ(Unlimited.MaxVisited, 0u);
}

TEST(Degrade, HealthyPrimaryDoesNotFallBack) {
  Traceset Racy = tracesetFor(RacySource);
  DegradeReport Rep;
  Verdict<Interleaving> V =
      degradedDataRaceFreedom(Racy, generous(), &Rep, nullptr, /*Workers=*/2);
  EXPECT_TRUE(V.isRefuted());
  EXPECT_FALSE(Rep.PrimaryFaulted);
  EXPECT_FALSE(Rep.FellBack);
  EXPECT_NE(Rep.str().find("primary ok"), std::string::npos);
}

TEST(Degrade, FaultedPrimaryFallsBackToOracleAnswer) {
  // These tests exercise the cold primary path; a verdict cached by an
  // earlier test would (correctly, but unhelpfully here) satisfy the
  // query without ever touching the faulted engine.
  BehaviourCache::global().clear();
  Traceset Racy = tracesetFor(RacySource);
  Traceset Drf = tracesetFor(DrfSource);
  FaultPlan Plan;
  // Every intern allocation fails: the reduced engine cannot take a step,
  // while the std::set-based oracle never touches an InternPool.
  Plan.arm(FaultSite::InternAlloc, 1, /*Repeat=*/~0ull);
  FaultPlan::Scope Armed(Plan);

  DegradeReport Rep;
  Verdict<Interleaving> V =
      degradedDataRaceFreedom(Racy, generous(), &Rep, nullptr, /*Workers=*/2);
  EXPECT_TRUE(V.isRefuted());
  EXPECT_TRUE(Rep.PrimaryFaulted);
  EXPECT_EQ(Rep.PrimaryReason, TruncationReason::EngineFault);
  EXPECT_TRUE(Rep.FellBack);
  EXPECT_EQ(Rep.FallbackReason, TruncationReason::None);

  DegradeReport Rep2;
  Verdict<Interleaving> V2 =
      degradedDataRaceFreedom(Drf, generous(), &Rep2, nullptr, /*Workers=*/2);
  EXPECT_TRUE(V2.isProved());
  EXPECT_TRUE(Rep2.FellBack);
}

TEST(Degrade, FaultedPrimaryBehavioursComeFromTheOracle) {
  Traceset Racy = tracesetFor(RacySource);
  EnumerationStats Clean;
  std::set<Behaviour> Want =
      degradedCollectBehaviours(Racy, generous(), &Clean);
  ASSERT_FALSE(Clean.Truncated);
  ASSERT_FALSE(Want.empty());

  FaultPlan Plan;
  Plan.arm(FaultSite::InternAlloc, 1, /*Repeat=*/~0ull);
  FaultPlan::Scope Armed(Plan);
  EnumerationStats Stats;
  DegradeReport Rep;
  std::set<Behaviour> Got = degradedCollectBehaviours(
      Racy, generous(), &Stats, &Rep, nullptr, /*Workers=*/2);
  EXPECT_TRUE(Rep.PrimaryFaulted);
  EXPECT_TRUE(Rep.FellBack);
  EXPECT_FALSE(Stats.Truncated);
  EXPECT_EQ(Got, Want); // the faulted primary's partial set was discarded
}

TEST(Degrade, CancellationDoesNotTriggerFallback) {
  Traceset Racy = tracesetFor(RacySource);
  CancelToken Cancel;
  Cancel.request(); // cancelled before the query even starts
  DegradeReport Rep;
  Verdict<Interleaving> V = degradedDataRaceFreedom(
      Racy, generous(), &Rep, &Cancel, /*Workers=*/1);
  // Small query: it may finish inside one budget check interval (a real
  // answer) — but if it was cut short, the reason must be Cancelled and
  // there must be no sneaky oracle retry.
  if (V.isUnknown())
    EXPECT_EQ(V.Reason, TruncationReason::Cancelled);
  EXPECT_FALSE(Rep.FellBack);
}

TEST(Degrade, FaultedFallbackStaysUnknown) {
  // Both engines poisoned: the BudgetCharge site fires on every interrupt
  // check, so the fallback faults too — the verdict must stay
  // Unknown(EngineFault), never invent an answer.
  BehaviourCache::global().clear();
  Traceset Racy = tracesetFor(RacySource);
  FaultPlan Plan;
  Plan.arm(FaultSite::BudgetCharge, 1, /*Repeat=*/~0ull);
  Plan.arm(FaultSite::InternAlloc, 1, /*Repeat=*/~0ull);
  FaultPlan::Scope Armed(Plan);
  DegradeReport Rep;
  Verdict<Interleaving> V =
      degradedDataRaceFreedom(Racy, generous(), &Rep, nullptr, /*Workers=*/2);
  EXPECT_TRUE(Rep.PrimaryFaulted);
  EXPECT_TRUE(Rep.FellBack);
  if (V.isUnknown())
    EXPECT_EQ(V.Reason, TruncationReason::EngineFault);
  else
    EXPECT_TRUE(V.isRefuted()); // witness found before the first check
}

} // namespace
