//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the direct SC program executor: behaviours, mutual
/// exclusion, race detection, and limit handling.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/ProgramExec.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

TEST(ProgramExec, SequentialProgramHasOneMaximalBehaviour) {
  Program P = parseOrDie("thread { print 1; print 2; print 3; }");
  std::set<Behaviour> Bs = programBehaviours(P);
  // Prefix-closed: {}, {1}, {1,2}, {1,2,3}.
  EXPECT_EQ(Bs.size(), 4u);
  EXPECT_TRUE(Bs.count(Behaviour{1, 2, 3}));
}

TEST(ProgramExec, InterleavingsMixOutputs) {
  Program P = parseOrDie("thread { print 1; } thread { print 2; }");
  std::set<Behaviour> Bs = programBehaviours(P);
  EXPECT_TRUE(Bs.count(Behaviour{1, 2}));
  EXPECT_TRUE(Bs.count(Behaviour{2, 1}));
}

TEST(ProgramExec, ReadsSeeSharedMemory) {
  Program P = parseOrDie(R"(
thread { x := 1; }
thread { r1 := x; print r1; }
)");
  std::set<Behaviour> Bs = programBehaviours(P);
  EXPECT_TRUE(Bs.count(Behaviour{0}));
  EXPECT_TRUE(Bs.count(Behaviour{1}));
  EXPECT_FALSE(Bs.count(Behaviour{2}));
}

TEST(ProgramExec, LocksSerialiseCriticalSections) {
  Program P = parseOrDie(R"(
thread { lock m; x := 1; r1 := x; print r1; unlock m; }
thread { lock m; x := 2; r2 := x; print r2; unlock m; }
)");
  std::set<Behaviour> Bs = programBehaviours(P);
  // Each thread always reads its own write back.
  EXPECT_TRUE(Bs.count(Behaviour{1, 2}));
  EXPECT_TRUE(Bs.count(Behaviour{2, 1}));
  EXPECT_FALSE(Bs.count(Behaviour{2, 2}));
  EXPECT_FALSE(Bs.count(Behaviour{1, 1}));
}

TEST(ProgramExec, ReentrantLocking) {
  Program P = parseOrDie(
      "thread { lock m; lock m; print 1; unlock m; unlock m; }");
  EXPECT_TRUE(programBehaviours(P).count(Behaviour{1}));
}

TEST(ProgramExec, EUlkDoesNotReleaseOthersLocks) {
  // Thread 1's unlock of an unheld monitor is silent; it must not free
  // thread 0's lock, so print 2 can only follow print 1.
  Program P = parseOrDie(R"(
thread { lock m; print 1; lock m2; unlock m2; print 9; unlock m; }
thread { unlock m; lock m; print 2; unlock m; }
)");
  std::set<Behaviour> Bs = programBehaviours(P);
  bool Saw219 = false;
  for (const Behaviour &B : Bs) {
    auto It1 = std::find(B.begin(), B.end(), 1);
    auto It2 = std::find(B.begin(), B.end(), 2);
    auto It9 = std::find(B.begin(), B.end(), 9);
    // Thread 0 holds m from before print 1 until after print 9, so print 2
    // can never land strictly between them.
    EXPECT_FALSE(It1 != B.end() && It2 != B.end() && It9 != B.end() &&
                 It1 < It2 && It2 < It9)
        << "print 2 escaped into thread 0's critical section";
    Saw219 |= B == Behaviour{2, 1, 9};
  }
  EXPECT_TRUE(Saw219) << "thread 1 should be able to take the lock first";
}

TEST(ProgramExec, WhileLoopOnSharedFlagTerminates) {
  Program P = parseOrDie(R"(
thread { flag := 1; }
thread { r1 := flag; while (r1 != 1) { r1 := flag; } print r1; }
)");
  ExecLimits Limits;
  Limits.MaxActionsPerThread = 8;
  ExecStats Stats;
  std::set<Behaviour> Bs = programBehaviours(P, Limits, &Stats);
  EXPECT_TRUE(Bs.count(Behaviour{1}));
  // The spin loop exceeds the per-thread action bound on some paths.
  EXPECT_TRUE(Stats.Truncated);
}

TEST(ProgramExec, RaceDetectionFindsAdjacentConflicts) {
  Program Racy = parseOrDie("thread { x := 1; } thread { r1 := x; }");
  ProgramRaceReport R = findProgramRace(Racy);
  EXPECT_TRUE(R.HasRace);
  ASSERT_GE(R.Witness.size(), 2u);
  const Event &A = R.Witness[R.Witness.size() - 2];
  const Event &B = R.Witness[R.Witness.size() - 1];
  EXPECT_TRUE(A.Act.conflictsWith(B.Act));
  EXPECT_NE(A.Tid, B.Tid);
}

TEST(ProgramExec, ReadReadSharingIsNotARace) {
  Program P = parseOrDie("thread { r1 := x; } thread { r2 := x; }");
  EXPECT_TRUE(isProgramDrf(P));
}

TEST(ProgramExec, VolatileRacesDoNotCount) {
  Program P = parseOrDie("volatile x; thread { x := 1; } thread { r1 := x; }");
  EXPECT_TRUE(isProgramDrf(P));
}

TEST(ProgramExec, LockProtectionPreventsRaces) {
  Program P = parseOrDie(R"(
thread { lock m; x := 1; unlock m; }
thread { lock m; r1 := x; unlock m; }
)");
  EXPECT_TRUE(isProgramDrf(P));
}

TEST(ProgramExec, SameThreadConflictsAreNotRaces) {
  Program P = parseOrDie("thread { x := 1; r1 := x; x := 2; }");
  EXPECT_TRUE(isProgramDrf(P));
}

TEST(ProgramExec, VisitedStatsAccumulate) {
  Program P = parseOrDie("thread { x := 1; } thread { y := 1; }");
  ExecStats Stats;
  programBehaviours(P, {}, &Stats);
  EXPECT_GT(Stats.Visited, 0u);
  EXPECT_FALSE(Stats.Truncated);
}

} // namespace
