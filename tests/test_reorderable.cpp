//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the reorderability predicate and the §4 summary table,
/// which the implementation must reproduce exactly (including the
/// roach-motel asymmetry).
///
//===----------------------------------------------------------------------===//

#include "semantics/Reorderable.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId M() { return Symbol::intern("m"); }

TEST(Reorderable, NormalAccessesDifferentLocations) {
  EXPECT_TRUE(reorderableWith(Action::mkWrite(X(), 1),
                              Action::mkWrite(Y(), 1)));
  EXPECT_TRUE(reorderableWith(Action::mkWrite(X(), 1),
                              Action::mkRead(Y(), 1)));
  EXPECT_TRUE(reorderableWith(Action::mkRead(X(), 1),
                              Action::mkWrite(Y(), 1)));
}

TEST(Reorderable, ConflictingAccessesNever) {
  EXPECT_FALSE(reorderableWith(Action::mkWrite(X(), 1),
                               Action::mkWrite(X(), 2)));
  EXPECT_FALSE(reorderableWith(Action::mkWrite(X(), 1),
                               Action::mkRead(X(), 1)));
  EXPECT_FALSE(reorderableWith(Action::mkRead(X(), 1),
                               Action::mkWrite(X(), 1)));
}

TEST(Reorderable, SameLocationReadsYes) {
  // Reads never conflict, even on the same location.
  EXPECT_TRUE(reorderableWith(Action::mkRead(X(), 0),
                              Action::mkRead(X(), 1)));
}

TEST(Reorderable, RoachMotelAsymmetry) {
  Action W = Action::mkWrite(X(), 1);
  Action R = Action::mkRead(X(), 1);
  Action Acq = Action::mkLock(M());
  Action Rel = Action::mkUnlock(M());
  // Accesses may move after a later acquire (into the critical section)...
  EXPECT_TRUE(reorderableWith(W, Acq));
  EXPECT_TRUE(reorderableWith(R, Acq));
  // ...but never across a later release (out of it).
  EXPECT_FALSE(reorderableWith(W, Rel));
  EXPECT_FALSE(reorderableWith(R, Rel));
  // A release may move after a later access (the access moves in).
  EXPECT_TRUE(reorderableWith(Rel, W));
  EXPECT_TRUE(reorderableWith(Rel, R));
  // An acquire never moves across anything.
  EXPECT_FALSE(reorderableWith(Acq, W));
  EXPECT_FALSE(reorderableWith(Acq, R));
  EXPECT_FALSE(reorderableWith(Acq, Rel));
  EXPECT_FALSE(reorderableWith(Acq, Acq));
}

TEST(Reorderable, VolatileAccessesActAsSyncActions) {
  Action VolR = Action::mkRead(X(), 0, true);  // Acquire.
  Action VolW = Action::mkWrite(X(), 0, true); // Release.
  Action NR = Action::mkRead(Y(), 0);
  Action NW = Action::mkWrite(Y(), 0);
  EXPECT_TRUE(reorderableWith(NW, VolR));  // Normal access vs acquire.
  EXPECT_TRUE(reorderableWith(NR, VolR));
  EXPECT_FALSE(reorderableWith(NW, VolW)); // Normal access vs release.
  EXPECT_TRUE(reorderableWith(VolW, NR));  // Release vs normal access.
  EXPECT_FALSE(reorderableWith(VolR, NR)); // Acquire vs anything.
  EXPECT_FALSE(reorderableWith(VolW, VolR));
  EXPECT_FALSE(reorderableWith(VolR, VolW));
}

TEST(Reorderable, ExternalsSwapWithNormalAccessesOnly) {
  Action Ext = Action::mkExternal(1);
  EXPECT_TRUE(reorderableWith(Ext, Action::mkWrite(X(), 1)));
  EXPECT_TRUE(reorderableWith(Ext, Action::mkRead(X(), 1)));
  EXPECT_TRUE(reorderableWith(Action::mkWrite(X(), 1), Ext));
  EXPECT_TRUE(reorderableWith(Action::mkRead(X(), 1), Ext));
  EXPECT_FALSE(reorderableWith(Ext, Ext));
  EXPECT_FALSE(reorderableWith(Ext, Action::mkLock(M())));
  EXPECT_FALSE(reorderableWith(Action::mkUnlock(M()), Ext));
}

TEST(Reorderable, StartActionsNever) {
  Action S = Action::mkStart(0);
  EXPECT_FALSE(reorderableWith(S, Action::mkWrite(X(), 1)));
  EXPECT_FALSE(reorderableWith(Action::mkWrite(X(), 1), S));
}

TEST(Reorderable, TableMatchesThePaper) {
  // §4's table, rows a / columns b, labels W, R, Acq, Rel, Ext:
  //   W:   x!=y  x!=y  yes  no   yes
  //   R:   x!=y  yes   yes  no   yes
  //   Acq: no    no    no   no   no
  //   Rel: yes   yes   no   no   no
  //   Ext: yes   yes   no   no   no
  const char *Expected[5][5] = {
      {"x!=y", "x!=y", "yes", "no", "yes"},
      {"x!=y", "yes", "yes", "no", "yes"},
      {"no", "no", "no", "no", "no"},
      {"yes", "yes", "no", "no", "no"},
      {"yes", "yes", "no", "no", "no"},
  };
  auto Table = computeReorderTable();
  for (size_t Row = 0; Row < 5; ++Row)
    for (size_t Col = 0; Col < 5; ++Col)
      EXPECT_EQ(Table[Row][Col], Expected[Row][Col])
          << ReorderTableLabels[Row] << " vs " << ReorderTableLabels[Col];
}

} // namespace
