//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests over randomly generated traces:
///
///  - §6.1's compositionality claim: proper eliminations compose under
///    trace concatenation (and the last-action cases genuinely do not);
///  - algebraic sanity of reordering functions and de-permutations;
///  - reflexivity of the traceset-level checkers;
///  - symmetry/antisymmetry facts about conflicts and reorderability.
///
//===----------------------------------------------------------------------===//

#include "semantics/Elimination.h"
#include "semantics/Reorderable.h"
#include "semantics/Reordering.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// Random well-locked trace without start actions (a thread-body segment,
/// as in sequential composition S1; S2).
Trace randomSegment(Rng &R, size_t Len) {
  std::vector<SymbolId> Locs = {Symbol::intern("x"), Symbol::intern("y")};
  SymbolId Vol = Symbol::intern("vv");
  SymbolId Mon = Symbol::intern("m");
  Trace T;
  int LockDepth = 0;
  for (size_t I = 0; I < Len; ++I) {
    switch (R.below(8)) {
    case 0:
      T.push_back(Action::mkRead(Locs[R.below(2)],
                                 static_cast<Value>(R.below(2))));
      break;
    case 1:
      T.push_back(Action::mkWildcardRead(Locs[R.below(2)]));
      break;
    case 2:
    case 3:
      T.push_back(Action::mkWrite(Locs[R.below(2)],
                                  static_cast<Value>(R.below(2))));
      break;
    case 4:
      T.push_back(Action::mkExternal(static_cast<Value>(R.below(2))));
      break;
    case 5:
      T.push_back(Action::mkLock(Mon));
      ++LockDepth;
      break;
    case 6:
      if (LockDepth > 0) {
        T.push_back(Action::mkUnlock(Mon));
        --LockDepth;
      } else {
        T.push_back(Action::mkRead(Vol, 0, /*Volatile=*/true));
      }
      break;
    default:
      T.push_back(Action::mkWrite(Vol, 1, /*Volatile=*/true));
      break;
    }
  }
  return T;
}

/// Drops a random subset of the properly eliminable indices of \p T.
Trace randomProperElimination(Rng &R, const Trace &T) {
  std::vector<size_t> Kept;
  for (size_t I = 0; I < T.size(); ++I) {
    if (isProperlyEliminable(T, I) && R.chance(1, 2))
      continue;
    Kept.push_back(I);
  }
  return T.restrictTo(Kept);
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, ProperEliminationsCompose) {
  // §6.1: t1 properly-eliminates to t1' and t2 to t2' implies t1 ++ t2
  // properly-eliminates to t1' ++ t2'.
  Rng R(GetParam());
  Trace T1 = randomSegment(R, 1 + R.below(6));
  Trace T2 = randomSegment(R, 1 + R.below(6));
  Trace T1P = randomProperElimination(R, T1);
  Trace T2P = randomProperElimination(R, T2);
  ASSERT_TRUE(isEliminationOfTrace(T1, T1P, /*ProperOnly=*/true));
  ASSERT_TRUE(isEliminationOfTrace(T2, T2P, /*ProperOnly=*/true));
  EXPECT_TRUE(isEliminationOfTrace(T1.concat(T2), T1P.concat(T2P),
                                   /*ProperOnly=*/true))
      << "t1 = " << T1.str() << "\nt1' = " << T1P.str()
      << "\nt2 = " << T2.str() << "\nt2' = " << T2P.str();
}

TEST_P(SeededProperty, EliminationIsReflexiveOnSegments) {
  Rng R(GetParam() + 1000);
  Trace T = randomSegment(R, 1 + R.below(8));
  EXPECT_TRUE(isEliminationOfTrace(T, T));
  EXPECT_TRUE(isEliminationOfTrace(T, T, /*ProperOnly=*/true));
}

TEST_P(SeededProperty, IdentityIsAlwaysAReorderingFunction) {
  Rng R(GetParam() + 2000);
  Trace T = randomSegment(R, 1 + R.below(8));
  Permutation Id = identityPermutation(T.size());
  EXPECT_TRUE(isReorderingFunction(T, Id));
  EXPECT_EQ(depermute(T, Id), T);
  for (size_t N = 0; N <= T.size(); ++N)
    EXPECT_EQ(depermutePrefix(T, Id, N), T.prefix(N));
}

TEST_P(SeededProperty, DepermutationPreservesTheActionMultiset) {
  Rng R(GetParam() + 3000);
  Trace T = randomSegment(R, 2 + R.below(6));
  // A random permutation (not necessarily a reordering function).
  Permutation F = identityPermutation(T.size());
  for (size_t I = T.size(); I > 1; --I)
    std::swap(F[I - 1], F[R.below(I)]);
  Trace D = depermute(T, F);
  std::multiset<Action> A(T.begin(), T.end());
  std::multiset<Action> B(D.begin(), D.end());
  EXPECT_EQ(A, B);
}

TEST_P(SeededProperty, ConflictIsSymmetricAndBlocksReordering) {
  Rng R(GetParam() + 4000);
  Trace T = randomSegment(R, 6);
  for (size_t I = 0; I < T.size(); ++I)
    for (size_t J = 0; J < T.size(); ++J) {
      EXPECT_EQ(T[I].conflictsWith(T[J]), T[J].conflictsWith(T[I]));
      if (T[I].conflictsWith(T[J])) {
        EXPECT_FALSE(reorderableWith(T[I], T[J]));
      }
    }
}

TEST_P(SeededProperty, EliminableIndicesAreDroppableOneByOne) {
  // Dropping any single eliminable index is a valid elimination.
  Rng R(GetParam() + 5000);
  Trace T = randomSegment(R, 2 + R.below(6));
  for (size_t I = 0; I < T.size(); ++I) {
    if (!isEliminable(T, I))
      continue;
    std::vector<size_t> Kept;
    for (size_t K = 0; K < T.size(); ++K)
      if (K != I)
        Kept.push_back(K);
    EXPECT_TRUE(isEliminationOfTrace(T, T.restrictTo(Kept)))
        << "index " << I << " of " << T.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<uint64_t>(1, 41));

TEST(ProperElimination, LastActionCasesDoNotCompose) {
  // The paper's reason for introducing proper eliminations: dropping
  // [W[x=1]] as a redundant last write is fine for t1 alone, but not once
  // t2 = [U[m]] is appended (the write is no longer last-before-release).
  SymbolId X = Symbol::intern("x"), M = Symbol::intern("m");
  Trace T1{Action::mkLock(M), Action::mkWrite(X, 1)};
  Trace T1P{Action::mkLock(M)};
  Trace T2{Action::mkUnlock(M)};
  EXPECT_TRUE(isEliminationOfTrace(T1, T1P)); // Case 6 applies.
  EXPECT_FALSE(isEliminationOfTrace(T1, T1P, /*ProperOnly=*/true));
  EXPECT_FALSE(isEliminationOfTrace(T1.concat(T2), T1P.concat(T2)))
      << "general eliminations must not compose here";
}

TEST(Reorderability, ExactlyCharacterisesSwapsOfAdjacentPairs) {
  // For any two actions a, b: the 2-element trace [b, a] is a reordering
  // of [a, b] (under an oracle containing both orders' prefixes) iff a' =
  // a is reorderable... directly: the swap permutation is a reordering
  // function for [b, a] iff reorderableWith(a, b).
  SymbolId X = Symbol::intern("x"), M = Symbol::intern("m");
  std::vector<Action> As = {
      Action::mkWrite(X, 1), Action::mkRead(X, 0),
      Action::mkWrite(Symbol::intern("y"), 1), Action::mkLock(M),
      Action::mkUnlock(M), Action::mkExternal(1),
      Action::mkWrite(X, 1, true), Action::mkRead(X, 0, true)};
  for (const Action &A : As)
    for (const Action &B : As) {
      Trace Swapped{B, A};
      Permutation F = {1, 0};
      EXPECT_EQ(isReorderingFunction(Swapped, F), reorderableWith(A, B))
          << A.str() << " / " << B.str();
    }
}

} // namespace
