//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for span interning and the sleep-set memo: idempotence,
/// collision safety, real-byte budget charging, the subset-prune rule, and
/// concurrent interning.
///
//===----------------------------------------------------------------------===//

#include "support/Intern.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace tracesafe;

namespace {

TEST(InternPool, FirstInsertThenHit) {
  InternPool P;
  uint64_t W[] = {1, 2, 3};
  InternPool::Result A = P.intern(W, 3);
  EXPECT_TRUE(A.Inserted);
  InternPool::Result B = P.intern(W, 3);
  EXPECT_FALSE(B.Inserted);
  EXPECT_EQ(A.Id, B.Id);
  EXPECT_EQ(P.size(), 1u);
}

TEST(InternPool, DistinctSpansDistinctIds) {
  InternPool P;
  uint64_t A[] = {1, 2, 3};
  uint64_t B[] = {1, 2, 4};
  uint64_t C[] = {1, 2};
  uint32_t Ia = P.intern(A, 3).Id;
  uint32_t Ib = P.intern(B, 3).Id;
  uint32_t Ic = P.intern(C, 2).Id;
  EXPECT_NE(Ia, Ib);
  EXPECT_NE(Ia, Ic);
  EXPECT_NE(Ib, Ic);
  EXPECT_EQ(P.size(), 3u);
}

TEST(InternPool, EmptySpanInterns) {
  // The root state of the POR search interns an empty sleep signature.
  InternPool P;
  InternPool::Result A = P.intern(nullptr, 0);
  EXPECT_TRUE(A.Inserted);
  InternPool::Result B = P.intern(nullptr, 0);
  EXPECT_FALSE(B.Inserted);
  EXPECT_EQ(A.Id, B.Id);
  auto [Ptr, Len] = P.view(A.Id);
  EXPECT_EQ(Len, 0u);
  (void)Ptr;
}

TEST(InternPool, ViewRoundTrips) {
  InternPool P;
  std::vector<uint64_t> W = {42, 0, ~0ULL, 7};
  uint32_t Id = P.intern(W.data(), W.size()).Id;
  auto [Ptr, Len] = P.view(Id);
  ASSERT_EQ(Len, W.size());
  for (size_t I = 0; I < W.size(); ++I)
    EXPECT_EQ(Ptr[I], W[I]);
}

TEST(InternPool, ViewStaysValidAcrossGrowth) {
  InternPool P;
  uint64_t First[] = {0xABCDEF};
  uint32_t Id = P.intern(First, 1).Id;
  const uint64_t *Before = P.view(Id).first;
  // Force many arena chunks and table rehashes.
  for (uint64_t I = 0; I < 50'000; ++I) {
    uint64_t W[] = {I, I * 3, I * 7};
    P.intern(W, 3);
  }
  auto [After, Len] = P.view(Id);
  EXPECT_EQ(After, Before) << "arena chunks must never move";
  ASSERT_EQ(Len, 1u);
  EXPECT_EQ(After[0], 0xABCDEFu);
}

TEST(InternPool, ChargesRealBytesToBudget) {
  BudgetSpec Spec;
  Spec.MaxMemoryBytes = 64 * 1024 * 1024;
  Budget B(Spec);
  InternPool P(/*ShardBits=*/0, &B);
  for (uint64_t I = 0; I < 10'000; ++I) {
    uint64_t W[] = {I, I + 1};
    P.intern(W, 2);
  }
  // The pool must have charged at least its span storage (2 words x 10k
  // spans), and its own accounting must agree with a sane lower bound.
  EXPECT_GE(P.bytes(), 10'000u * 2 * sizeof(uint64_t));
  EXPECT_FALSE(B.exhausted());
}

TEST(InternPool, BudgetExhaustionIsFlaggedNotFatal) {
  BudgetSpec Spec;
  Spec.MaxMemoryBytes = 16 * 1024; // far less than 100k spans need
  Budget B(Spec);
  InternPool P(/*ShardBits=*/0, &B);
  for (uint64_t I = 0; I < 100'000; ++I) {
    uint64_t W[] = {I, I ^ 0x5555, I << 7};
    P.intern(W, 3);
  }
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason(), TruncationReason::MemoryCap);
  // The pool itself stays coherent after exhaustion.
  uint64_t W[] = {1, 0x5554, 1ULL << 7};
  EXPECT_FALSE(P.intern(W, 3).Inserted);
}

TEST(InternPool, ConcurrentInterningIsConsistent) {
  InternPool P(/*ShardBits=*/4);
  ThreadPool Pool(4);
  constexpr uint64_t Span = 2'000;
  std::vector<std::atomic<uint32_t>> Ids(Span);
  for (auto &A : Ids)
    A.store(UINT32_MAX);
  {
    ThreadPool::TaskGroup G(Pool);
    for (int W = 0; W < 8; ++W)
      G.spawn([&P, &Ids, W] {
        for (uint64_t I = 0; I < Span; ++I) {
          uint64_t Words[] = {I, I * 31};
          uint32_t Id = P.intern(Words, 2).Id;
          uint32_t Expected = UINT32_MAX;
          if (!Ids[I].compare_exchange_strong(Expected, Id)) {
            EXPECT_EQ(Expected, Id) << "span " << I << " worker " << W;
          }
        }
      });
  }
  EXPECT_EQ(P.size(), Span);
}

TEST(InternPool, LockFreeReadsRaceWithGrowth) {
  // The read fast path (hash probe over an atomically published slot
  // table, plus view()) takes no lock; this drives it concurrently with
  // enough fresh inserts to force several table growths and arena chunk
  // allocations mid-probe. Readers hammer spans inserted before the storm
  // and verify both id stability and payload round-trips — under TSan
  // this is the proof the published-table scheme has no data race.
  InternPool P(/*ShardBits=*/2);
  constexpr uint64_t Hot = 512;
  std::vector<uint32_t> HotIds(Hot);
  for (uint64_t I = 0; I < Hot; ++I) {
    uint64_t W[] = {I, ~I, I * 0x9E3779B97F4A7C15ULL};
    HotIds[I] = P.intern(W, 3).Id;
  }
  ThreadPool Pool(4);
  {
    ThreadPool::TaskGroup G(Pool);
    // Writers: force growth with a stream of fresh spans.
    for (int Writer = 0; Writer < 2; ++Writer)
      G.spawn([&P, Writer] {
        for (uint64_t I = 0; I < 20'000; ++I) {
          uint64_t W[] = {(uint64_t)Writer << 32 | I, I * 131, I * 137, I};
          P.intern(W, 4);
        }
      });
    // Readers: re-intern hot spans (hit path) and view their payloads.
    for (int Reader = 0; Reader < 4; ++Reader)
      G.spawn([&P, &HotIds] {
        for (int Round = 0; Round < 50; ++Round)
          for (uint64_t I = 0; I < Hot; ++I) {
            uint64_t W[] = {I, ~I, I * 0x9E3779B97F4A7C15ULL};
            InternPool::Result R = P.intern(W, 3);
            ASSERT_FALSE(R.Inserted);
            ASSERT_EQ(R.Id, HotIds[I]);
            auto [Ptr, Len] = P.view(R.Id);
            ASSERT_EQ(Len, 3u);
            ASSERT_EQ(Ptr[0], I);
            ASSERT_EQ(Ptr[2], I * 0x9E3779B97F4A7C15ULL);
          }
      });
  }
  EXPECT_EQ(P.size(), Hot + 2 * 20'000);
}

TEST(SleepMemo, SubsetPruneRule) {
  InternPool Sigs;
  SleepMemo Memo(/*ShardBits=*/0, Sigs);
  uint64_t E1[] = {10};
  uint64_t E12[] = {10, 20};
  uint64_t E2[] = {20};
  uint32_t S1 = Sigs.intern(E1, 1).Id;
  uint32_t S12 = Sigs.intern(E12, 2).Id;
  uint32_t S2 = Sigs.intern(E2, 1).Id;
  uint32_t SEmpty = Sigs.intern(nullptr, 0).Id;

  // First visit with {10,20} explores.
  EXPECT_TRUE(Memo.shouldExplore(/*StateId=*/7, S12));
  // Revisit with a superset-or-equal sleep is covered: {10,20} ⊆ {10,20}.
  EXPECT_FALSE(Memo.shouldExplore(7, S12));
  // Smaller sleep {10} allows MORE transitions -> must re-explore.
  EXPECT_TRUE(Memo.shouldExplore(7, S1));
  // Now {10} is recorded; {10,20} is a superset -> covered.
  EXPECT_FALSE(Memo.shouldExplore(7, S12));
  // {20} is not a superset of {10} -> explore.
  EXPECT_TRUE(Memo.shouldExplore(7, S2));
  // Empty sleep is a subset of nothing recorded except itself -> explore,
  // and afterwards it dominates everything.
  EXPECT_TRUE(Memo.shouldExplore(7, SEmpty));
  EXPECT_FALSE(Memo.shouldExplore(7, S1));
  EXPECT_FALSE(Memo.shouldExplore(7, S2));
  EXPECT_FALSE(Memo.shouldExplore(7, S12));
  EXPECT_FALSE(Memo.shouldExplore(7, SEmpty));

  // Distinct states do not interfere.
  EXPECT_TRUE(Memo.shouldExplore(8, S12));
}

TEST(SleepMemo, ConcurrentVisitsNeverBothPrune) {
  // Whatever the interleaving, at least one of two concurrent first visits
  // to the same (state, signature) must explore.
  InternPool Sigs(/*ShardBits=*/2);
  SleepMemo Memo(/*ShardBits=*/2, Sigs);
  uint64_t W[] = {5};
  uint32_t Sig = Sigs.intern(W, 1).Id;
  ThreadPool Pool(4);
  constexpr uint32_t States = 500;
  std::vector<std::atomic<int>> Explored(States);
  {
    ThreadPool::TaskGroup G(Pool);
    for (int Worker = 0; Worker < 8; ++Worker)
      G.spawn([&Memo, &Explored, Sig] {
        for (uint32_t S = 0; S < States; ++S)
          if (Memo.shouldExplore(S, Sig))
            Explored[S].fetch_add(1);
      });
  }
  for (uint32_t S = 0; S < States; ++S)
    EXPECT_EQ(Explored[S].load(), 1) << "state " << S;
}

TEST(SleepMemo, LockFreePrunesRaceWithRecordingVisits) {
  // shouldExplore answers "prune" (false) without the shard lock when a
  // dominating record is already published. Mix recording first visits
  // with a flood of read-mostly revisits across many states while new
  // signatures keep landing in the signature pool (invalidating the
  // thread-local front cache via the generation counter). The invariant
  // from ConcurrentVisitsNeverBothPrune must survive the fast path:
  // exactly one explorer per (state, dominant signature).
  InternPool Sigs(/*ShardBits=*/2);
  SleepMemo Memo(/*ShardBits=*/2, Sigs);
  constexpr uint32_t States = 300;
  std::vector<std::atomic<int>> Explored(States);
  ThreadPool Pool(4);
  {
    ThreadPool::TaskGroup G(Pool);
    // Churn: grow the signature pool so readers' caches go stale.
    G.spawn([&Sigs] {
      for (uint64_t I = 0; I < 30'000; ++I) {
        uint64_t W[] = {I | (1ULL << 40), I * 31};
        Sigs.intern(W, 2);
      }
    });
    for (int Worker = 0; Worker < 6; ++Worker)
      G.spawn([&Memo, &Sigs, &Explored, Worker] {
        uint64_t W[] = {7};
        uint32_t Sig = Sigs.intern(W, 1).Id;
        for (int Round = 0; Round < 40; ++Round)
          for (uint32_t S = 0; S < States; ++S)
            if (Memo.shouldExplore(S, Sig))
              Explored[S].fetch_add(1);
        (void)Worker;
      });
  }
  for (uint32_t S = 0; S < States; ++S)
    EXPECT_EQ(Explored[S].load(), 1) << "state " << S;
}

} // namespace
