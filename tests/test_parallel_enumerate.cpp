//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence and determinism suite for the parallel enumeration engine.
///
/// The reduced engine (interned states + sleep-set POR + work stealing)
/// must be verdict-identical to the seed's exhaustive sequential
/// enumerator on every query: same behaviour sets, same race verdicts,
/// for every worker count. Visited counts are *not* compared — partial
/// order reduction exists precisely to visit less, and work distribution
/// is scheduling-dependent.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "trace/Enumerate.h"
#include "verify/Fuzz.h"
#include "verify/ProgramGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tracesafe;

namespace {

/// Programs covering the interesting interaction shapes: races, lock
/// discipline, volatiles, loops and branching.
const char *const Corpus[] = {
    // Fig 2 shape: racy copy + racy write-back.
    "thread { r0 := x; y := r0; }\n"
    "thread { r1 := y; x := 1; print r1; }\n",
    // Lock-disciplined message passing (DRF).
    "thread { sync m { x := 1; } }\n"
    "thread { sync m { r0 := x; } print r0; }\n",
    // Volatile flag handoff.
    "volatile f;\n"
    "thread { x := 1; f := 1; }\n"
    "thread { r0 := f; if (r0 == 1) { r1 := x; print r1; } else { skip; } }\n",
    // Three threads, one location.
    "thread { x := 1; }\n"
    "thread { x := 2; }\n"
    "thread { r0 := x; print r0; }\n",
    // Loop (truncated at the action bound) + race.
    "thread { while (r0 == 0) { r0 := x; } print r0; }\n"
    "thread { x := 1; }\n",
    // Nested locks, no race.
    "thread { sync m { sync n { x := 1; } } }\n"
    "thread { sync m { r0 := x; } print r0; }\n",
};

Traceset tracesetFor(const std::string &Source, unsigned MaxActions = 10) {
  Program P = parseOrDie(Source);
  ExploreLimits L;
  L.MaxActions = MaxActions;
  return programTraceset(P, defaultDomainFor(P, 2), L);
}

EnumerationLimits limitsFor(unsigned Workers, bool Oracle = false) {
  EnumerationLimits L;
  L.Workers = Workers;
  L.ExhaustiveOracle = Oracle;
  return L;
}

/// Asserts the reduced engine at \p Workers agrees with the seed oracle on
/// behaviours and the race verdict, and that no search truncated.
void expectEquivalent(const Traceset &T, unsigned Workers,
                      const std::string &Tag) {
  EnumerationStats OracleStats, ReducedStats;
  std::set<Behaviour> Want =
      collectBehaviours(T, limitsFor(1, /*Oracle=*/true), &OracleStats);
  std::set<Behaviour> Got =
      collectBehaviours(T, limitsFor(Workers), &ReducedStats);
  ASSERT_FALSE(OracleStats.Truncated) << Tag;
  ASSERT_FALSE(ReducedStats.Truncated) << Tag;
  EXPECT_EQ(Want, Got) << Tag << " workers=" << Workers;

  RaceReport WantRace = findAdjacentRace(T, limitsFor(1, /*Oracle=*/true));
  RaceReport GotRace = findAdjacentRace(T, limitsFor(Workers));
  ASSERT_FALSE(WantRace.Stats.Truncated) << Tag;
  ASSERT_FALSE(GotRace.Stats.Truncated) << Tag;
  EXPECT_EQ(WantRace.HasRace, GotRace.HasRace)
      << Tag << " workers=" << Workers;
  if (GotRace.HasRace) {
    EXPECT_TRUE(GotRace.Witness.isExecutionOf(T))
        << Tag << ": race witness is not an execution: "
        << GotRace.Witness.str();
  }
}

TEST(ParallelEnumerate, PorMatchesOracleOnCorpus) {
  for (size_t I = 0; I < std::size(Corpus); ++I)
    expectEquivalent(tracesetFor(Corpus[I]), /*Workers=*/1,
                     "corpus[" + std::to_string(I) + "]");
}

TEST(ParallelEnumerate, ParallelMatchesOracleOnCorpus) {
  for (size_t I = 0; I < std::size(Corpus); ++I)
    for (unsigned Workers : {2u, 8u})
      expectEquivalent(tracesetFor(Corpus[I]), Workers,
                       "corpus[" + std::to_string(I) + "]");
}

TEST(ParallelEnumerate, ExamplePrograms) {
  // Every shipped example program, parsed from disk.
  std::filesystem::path Dir = TRACESAFE_EXAMPLES_DIR;
  size_t Found = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".tsl")
      continue;
    ++Found;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In) << Entry.path();
    std::stringstream Ss;
    Ss << In.rdbuf();
    // Shallow action bound: the examples contain loops, and the oracle
    // side of the comparison has no reduction to lean on.
    Traceset T = tracesetFor(Ss.str(), /*MaxActions=*/7);
    for (unsigned Workers : {1u, 2u})
      expectEquivalent(T, Workers, Entry.path().filename().string());
  }
  EXPECT_GE(Found, 4u) << "example programs missing from " << Dir;
}

TEST(ParallelEnumerate, RandomProgramSweep) {
  // Seeded generator sweep across all disciplines; equivalence must hold
  // on programs nobody hand-picked.
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng R(Seed);
    GenOptions G;
    G.Discipline = static_cast<GenDiscipline>(Seed % 4);
    Program P = generateProgram(R, G);
    ExploreLimits L;
    L.MaxActions = 9;
    Traceset T = programTraceset(P, defaultDomainFor(P, 2), L);
    expectEquivalent(T, /*Workers=*/1, "seed " + std::to_string(Seed));
    expectEquivalent(T, /*Workers=*/4, "seed " + std::to_string(Seed));
  }
}

TEST(ParallelEnumerate, DeterministicAcrossWorkerCounts) {
  // Same verdicts and behaviour sets for 1, 2 and 8 workers — the merge
  // structure (sets, monotone flags) makes scheduling invisible.
  Traceset T = tracesetFor(Corpus[0]);
  std::set<Behaviour> B1 = collectBehaviours(T, limitsFor(1));
  RaceReport R1 = findAdjacentRace(T, limitsFor(1));
  for (unsigned Workers : {2u, 8u}) {
    EXPECT_EQ(B1, collectBehaviours(T, limitsFor(Workers)));
    EXPECT_EQ(R1.HasRace, findAdjacentRace(T, limitsFor(Workers)).HasRace);
  }
}

TEST(ParallelEnumerate, VisitorSearchesMatchSeedEngine) {
  // forEachExecution / forEachMaximalExecution have no reduction; the
  // parallel visitor must produce exactly the seed's execution set.
  Traceset T = tracesetFor(Corpus[1]);
  auto Collect = [&T](unsigned Workers, bool Oracle) {
    std::set<std::string> Out;
    forEachMaximalExecution(
        T,
        [&Out](const Interleaving &I) {
          Out.insert(I.str());
          return true;
        },
        limitsFor(Workers, Oracle));
    return Out;
  };
  std::set<std::string> Want = Collect(1, true);
  EXPECT_EQ(Want, Collect(1, false));
  EXPECT_EQ(Want, Collect(4, false));
}

TEST(ParallelEnumerate, SleepSetsOffStillMatches) {
  // POR disabled exercises the interned engine without pruning.
  Traceset T = tracesetFor(Corpus[3]);
  EnumerationLimits NoPor = limitsFor(1);
  NoPor.SleepSets = false;
  EXPECT_EQ(collectBehaviours(T, limitsFor(1, /*Oracle=*/true)),
            collectBehaviours(T, NoPor));
  EXPECT_EQ(findAdjacentRace(T, limitsFor(1, true)).HasRace,
            findAdjacentRace(T, NoPor).HasRace);
}

TEST(ParallelEnumerate, SourceSetsOffStillMatches) {
  // Source-set grouping layered on sleep sets is sound and optional; every
  // on/off combination must agree with the oracle.
  for (size_t I = 0; I < std::size(Corpus); ++I) {
    Traceset T = tracesetFor(Corpus[I]);
    std::set<Behaviour> Want =
        collectBehaviours(T, limitsFor(1, /*Oracle=*/true));
    for (bool Sleep : {true, false})
      for (bool Source : {true, false})
        for (unsigned Workers : {1u, 4u}) {
          EnumerationLimits L = limitsFor(Workers);
          L.SleepSets = Sleep;
          L.SourceSets = Source;
          EXPECT_EQ(Want, collectBehaviours(T, L))
              << "corpus[" << I << "] sleep=" << Sleep
              << " source=" << Source << " workers=" << Workers;
        }
  }
}

TEST(ParallelEnumerate, SourceSetsPruneDisjointThreadGroups) {
  // Threads touching disjoint locations are the best case for source-set
  // grouping: scheduling between the groups is irrelevant, and the search
  // should commit to one group at a time instead of interleaving them.
  Traceset T = tracesetFor("thread { x := 1; r0 := x; print r0; }\n"
                           "thread { y := 1; r1 := y; print r1; }\n");
  EnumerationStats With, Without;
  EnumerationLimits On = limitsFor(1);
  EnumerationLimits Off = limitsFor(1);
  Off.SourceSets = false;
  std::set<Behaviour> A = collectBehaviours(T, On, &With);
  std::set<Behaviour> B = collectBehaviours(T, Off, &Without);
  EXPECT_EQ(A, B);
  EXPECT_LE(With.Visited, Without.Visited)
      << "source sets explored more than plain sleep sets";
}

TEST(ParallelEnumerate, RaceVerdictSourceSetMatrixMatchesOracle) {
  // The race query now runs under source-set reduction too (see the
  // soundness argument in trace/Enumerate.cpp): across the corpus and a
  // seeded random sweep, every (sleep × source × workers) combination
  // must return the oracle's race verdict.
  std::vector<std::pair<std::string, Traceset>> Suite;
  for (size_t I = 0; I < std::size(Corpus); ++I)
    Suite.emplace_back("corpus[" + std::to_string(I) + "]",
                       tracesetFor(Corpus[I]));
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng R(Seed);
    GenOptions G;
    G.Discipline = static_cast<GenDiscipline>(Seed % 4);
    Program P = generateProgram(R, G);
    ExploreLimits L;
    L.MaxActions = 9;
    Suite.emplace_back("seed " + std::to_string(Seed),
                       programTraceset(P, defaultDomainFor(P, 2), L));
  }
  for (const auto &[Tag, T] : Suite) {
    RaceReport Want = findAdjacentRace(T, limitsFor(1, /*Oracle=*/true));
    ASSERT_FALSE(Want.Stats.Truncated) << Tag;
    for (bool Sleep : {true, false})
      for (bool Source : {true, false})
        for (unsigned Workers : {1u, 4u}) {
          EnumerationLimits L = limitsFor(Workers);
          L.SleepSets = Sleep;
          L.SourceSets = Source;
          RaceReport Got = findAdjacentRace(T, L);
          ASSERT_FALSE(Got.Stats.Truncated)
              << Tag << " sleep=" << Sleep << " source=" << Source;
          EXPECT_EQ(Want.HasRace, Got.HasRace)
              << Tag << " sleep=" << Sleep << " source=" << Source
              << " workers=" << Workers;
          if (Got.HasRace)
            EXPECT_TRUE(Got.Witness.isExecutionOf(T))
                << Tag << ": witness is not an execution";
        }
  }
}

TEST(ParallelEnumerate, RaceSourceSetsPruneDisjointThreadGroups) {
  // Disjoint-location threads cannot race; the source-set-restricted
  // race search should prove it while exploring no more states than the
  // sleep-set-only search.
  Traceset T = tracesetFor("thread { x := 1; r0 := x; print r0; }\n"
                           "thread { y := 1; r1 := y; print r1; }\n");
  EnumerationLimits On = limitsFor(1);
  EnumerationLimits Off = limitsFor(1);
  Off.SourceSets = false;
  RaceReport With = findAdjacentRace(T, On);
  RaceReport Without = findAdjacentRace(T, Off);
  EXPECT_FALSE(With.HasRace);
  EXPECT_FALSE(Without.HasRace);
  EXPECT_LE(With.Stats.Visited, Without.Stats.Visited)
      << "race-query source sets explored more than plain sleep sets";
}

TEST(ParallelEnumerate, ExploreWorkersDeterministic) {
  // programTraceset must return the identical traceset for every width.
  Program P = parseOrDie(Corpus[2]);
  ExploreLimits L1;
  L1.MaxActions = 10;
  ExploreLimits L2 = L1;
  L2.Workers = 2;
  ExploreLimits L8 = L1;
  L8.Workers = 8;
  std::vector<Value> Domain = defaultDomainFor(P, 2);
  Traceset T1 = programTraceset(P, Domain, L1);
  EXPECT_EQ(T1, programTraceset(P, Domain, L2));
  EXPECT_EQ(T1, programTraceset(P, Domain, L8));
}

TEST(ParallelEnumerate, FuzzCampaignDeterministicAcrossJobs) {
  // The fuzz report (counters and failures) must not depend on the worker
  // count; only wall-clock may differ.
  FuzzOptions O;
  O.Seed = 99;
  O.Programs = 12;
  O.CheckThinAir = false;
  O.Escalation.Initial.DeadlineMs = 200;
  auto Strip = [](FuzzReport R) {
    R.ElapsedMs = 0;
    return R;
  };
  FuzzReport Seq = Strip(runFuzz(O));
  O.Jobs = 3;
  FuzzReport Par = Strip(runFuzz(O));
  EXPECT_EQ(Seq.ProgramsRun, Par.ProgramsRun);
  EXPECT_EQ(Seq.ChecksRun, Par.ChecksRun);
  EXPECT_EQ(Seq.ProvedQueries, Par.ProvedQueries);
  EXPECT_EQ(Seq.Failures.size(), Par.Failures.size());
  for (size_t I = 0; I < Seq.Failures.size() && I < Par.Failures.size(); ++I) {
    EXPECT_EQ(Seq.Failures[I].ProgramIndex, Par.Failures[I].ProgramIndex);
    EXPECT_EQ(Seq.Failures[I].Property, Par.Failures[I].Property);
  }
}

TEST(ParallelEnumerate, SemanticStepCheckerCleanOnSafeChains) {
  // Satellite (a): Lemma 4/5 verified per chain step; safe chains must
  // never produce a semantic-step failure.
  FuzzOptions O;
  O.Seed = 7;
  O.Programs = 8;
  O.CheckThinAir = false;
  O.CheckSemanticSteps = true;
  O.Escalation.Initial.DeadlineMs = 200;
  FuzzReport R = runFuzz(O);
  for (const FuzzFailure &F : R.Failures)
    EXPECT_NE(F.Property, "semantic-step") << F.Detail;
  EXPECT_GT(R.ChecksRun, R.ProgramsRun) << "semantic checks did not run";
}

} // namespace
