//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for Trace: list notation, wildcard instances, structural
/// well-formedness, the release-acquire-pair window, and value origins.
///
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId V() { return Symbol::intern("v"); }
SymbolId M() { return Symbol::intern("m"); }

Trace sample() {
  return Trace{Action::mkStart(0), Action::mkWrite(X(), 1),
               Action::mkRead(Y(), 0), Action::mkExternal(1)};
}

TEST(Trace, PrefixAndConcat) {
  Trace T = sample();
  EXPECT_EQ(T.prefix(0), Trace());
  EXPECT_EQ(T.prefix(2),
            (Trace{Action::mkStart(0), Action::mkWrite(X(), 1)}));
  EXPECT_EQ(T.prefix(99), T);
  EXPECT_TRUE(T.prefix(2).isPrefixOf(T));
  EXPECT_TRUE(T.isPrefixOf(T));
  EXPECT_FALSE(T.isPrefixOf(T.prefix(2)));
  EXPECT_EQ(T.prefix(2).concat(Trace{T[2], T[3]}), T);
}

TEST(Trace, RestrictToImplementsPaperNotation) {
  // [a,b,c,d]|{1,3} = [b,d].
  Trace T = sample();
  Trace R = T.restrictTo({1, 3});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], T[1]);
  EXPECT_EQ(R[1], T[3]);
  EXPECT_EQ(T.restrictTo({}), Trace());
}

TEST(Trace, WildcardInstances) {
  Trace T{Action::mkStart(0), Action::mkWildcardRead(X()),
          Action::mkWildcardRead(Y())};
  std::vector<Trace> Inst = T.instances({0, 1});
  EXPECT_EQ(Inst.size(), 4u);
  for (const Trace &I : Inst) {
    EXPECT_FALSE(I.hasWildcards());
    EXPECT_TRUE(T.hasInstance(I));
  }
  // A concrete trace is its own single instance.
  Trace C{Action::mkStart(0)};
  EXPECT_EQ(C.instances({0, 1, 2}), std::vector<Trace>{C});
}

TEST(Trace, HasInstanceRejectsMismatches) {
  Trace T{Action::mkStart(0), Action::mkWildcardRead(X())};
  EXPECT_TRUE(T.hasInstance(Trace{Action::mkStart(0),
                                  Action::mkRead(X(), 3)}));
  EXPECT_FALSE(T.hasInstance(Trace{Action::mkStart(0),
                                   Action::mkRead(Y(), 3)}));
  EXPECT_FALSE(T.hasInstance(Trace{Action::mkStart(0)}));
  EXPECT_FALSE(T.hasInstance(Trace{Action::mkStart(1),
                                   Action::mkRead(X(), 3)}));
}

TEST(Trace, ProperlyStarted) {
  EXPECT_TRUE(Trace().isProperlyStarted());
  EXPECT_TRUE(sample().isProperlyStarted());
  EXPECT_FALSE(Trace{Action::mkWrite(X(), 1)}.isProperlyStarted());
  EXPECT_FALSE((Trace{Action::mkStart(0), Action::mkStart(0)})
                   .isProperlyStarted());
}

TEST(Trace, WellLocked) {
  EXPECT_TRUE((Trace{Action::mkLock(M()), Action::mkUnlock(M())})
                  .isWellLocked());
  EXPECT_TRUE((Trace{Action::mkLock(M()), Action::mkLock(M()),
                     Action::mkUnlock(M())})
                  .isWellLocked());
  EXPECT_FALSE(Trace{Action::mkUnlock(M())}.isWellLocked());
  EXPECT_FALSE((Trace{Action::mkLock(M()),
                      Action::mkUnlock(Symbol::intern("m2"))})
                   .isWellLocked());
}

TEST(Trace, ReleaseAcquirePairWindow) {
  // [S, W, U[m], L[m], R]: a release-acquire pair sits between 1 and 4.
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkUnlock(M()),
          Action::mkLock(M()), Action::mkRead(X(), 1)};
  EXPECT_TRUE(T.hasReleaseAcquirePairBetween(1, 4 + 1));
  EXPECT_TRUE(T.hasReleaseAcquirePairBetween(0, T.size()));
  // The window is strict: r and a must lie strictly inside.
  EXPECT_FALSE(T.hasReleaseAcquirePairBetween(2, 4)); // Only L[m] inside.
  EXPECT_FALSE(T.hasReleaseAcquirePairBetween(1, 3)); // Only U[m] inside.
  // A lone acquire (lock) is not a pair.
  Trace T2{Action::mkStart(0), Action::mkRead(Y(), 0), Action::mkLock(M()),
           Action::mkRead(Y(), 0)};
  EXPECT_FALSE(T2.hasReleaseAcquirePairBetween(1, 3));
  // Volatile write then volatile read also forms a pair.
  Trace T3{Action::mkStart(0), Action::mkRead(X(), 0),
           Action::mkWrite(V(), 1, true), Action::mkRead(V(), 1, true),
           Action::mkRead(X(), 0)};
  EXPECT_TRUE(T3.hasReleaseAcquirePairBetween(1, 4));
}

TEST(Trace, AcquireThenReleaseIsNotAPair) {
  // Pair means release *then* acquire, in that order.
  Trace T{Action::mkStart(0), Action::mkRead(X(), 0), Action::mkLock(M()),
          Action::mkUnlock(M()), Action::mkRead(X(), 0)};
  EXPECT_FALSE(T.hasReleaseAcquirePairBetween(1, 4));
}

TEST(Trace, OriginForValue) {
  // Write of 5 with no preceding read of 5: origin.
  EXPECT_TRUE((Trace{Action::mkStart(0), Action::mkWrite(X(), 5)})
                  .isOriginFor(5));
  // External of 5 with no preceding read: origin.
  EXPECT_TRUE((Trace{Action::mkStart(0), Action::mkExternal(5)})
                  .isOriginFor(5));
  // Read of 5 (from any location) before the write: not an origin.
  EXPECT_FALSE((Trace{Action::mkStart(0), Action::mkRead(Y(), 5),
                      Action::mkWrite(X(), 5)})
                   .isOriginFor(5));
  // Reads alone never make an origin.
  EXPECT_FALSE((Trace{Action::mkStart(0), Action::mkRead(X(), 5)})
                   .isOriginFor(5));
  // Unrelated values do not interfere.
  EXPECT_TRUE((Trace{Action::mkStart(0), Action::mkRead(Y(), 4),
                     Action::mkWrite(X(), 5)})
                  .isOriginFor(5));
}

TEST(Trace, Rendering) {
  EXPECT_EQ(sample().str(), "[S(0), W[x=1], R[y=0], X(1)]");
  EXPECT_EQ(Trace().str(), "[]");
}

TEST(Trace, LexicographicOrderGroupsPrefixes) {
  Trace A{Action::mkStart(0)};
  Trace AB{Action::mkStart(0), Action::mkWrite(X(), 1)};
  EXPECT_LT(A, AB);
  EXPECT_LT(Trace(), A);
}

} // namespace
